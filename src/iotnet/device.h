// Copyright 2026 The siot-trust Authors.
// A node device of the experimental IoT network (§5.2): CC2530-class SoC
// with a ZigBee stack, energy accounting (active vs sleep current), and an
// optional optical sensor attached through the 2.54 mm pin interface.

#ifndef SIOT_IOTNET_DEVICE_H_
#define SIOT_IOTNET_DEVICE_H_

#include <memory>
#include <optional>

#include "iotnet/sensor.h"
#include "iotnet/zstack.h"

namespace siot::iotnet {

/// Role a device plays in the experiments (§5.2: five groups of two
/// trustors, two honest trustees and two dishonest trustees, plus the
/// coordinator).
enum class DeviceRole : std::uint8_t {
  kCoordinator,
  kTrustor,
  kHonestTrustee,
  kDishonestTrustee,
};

std::string_view DeviceRoleName(DeviceRole role);

/// CC2530-flavoured power model.
struct PowerParams {
  double supply_volts = 3.3;
  /// Active (RX/TX) current draw.
  double active_milliamps = 29.0;
  /// Power-mode-2 sleep current.
  double sleep_microamps = 1.0;
};

/// One network node: stack + role + group + energy accounting.
class NodeDevice {
 public:
  NodeDevice(IoTNetwork* network, DeviceAddr address, DeviceRole role,
             std::size_t group, MacParams mac, PowerParams power,
             std::uint64_t seed);

  DeviceAddr address() const { return stack_.address(); }
  DeviceRole role() const { return role_; }
  std::size_t group() const { return group_; }
  bool is_trustee() const {
    return role_ == DeviceRole::kHonestTrustee ||
           role_ == DeviceRole::kDishonestTrustee;
  }

  ZStack& stack() { return stack_; }
  const ZStack& stack() const { return stack_; }

  /// Attaches an optical sensor (§5.2: "optical sensors are attached to
  /// the main boards by these 2.54 pin interfaces").
  void AttachOpticalSensor(OpticalSensor sensor) {
    sensor_ = std::move(sensor);
  }
  bool has_optical_sensor() const { return sensor_.has_value(); }
  OpticalSensor& optical_sensor();

  /// Energy consumed so far given the device has been radio-active for
  /// stack().active_time() out of `elapsed` total simulation time (mJ).
  double EnergyConsumedMillijoules(SimTime elapsed) const;

  const PowerParams& power() const { return power_; }

 private:
  ZStack stack_;
  DeviceRole role_;
  std::size_t group_;
  PowerParams power_;
  std::optional<OpticalSensor> sensor_;
};

}  // namespace siot::iotnet

#endif  // SIOT_IOTNET_DEVICE_H_
