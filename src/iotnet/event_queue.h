// Copyright 2026 The siot-trust Authors.
// Discrete-event scheduler for the simulated IoT network. Time is in
// microseconds; events with equal timestamps fire in scheduling order
// (stable), so simulations are fully deterministic.

#ifndef SIOT_IOTNET_EVENT_QUEUE_H_
#define SIOT_IOTNET_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace siot::iotnet {

/// Simulation time in microseconds.
using SimTime = std::uint64_t;

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000;
inline constexpr SimTime kSecond = 1000 * 1000;

/// Deterministic discrete-event queue.
class EventQueue {
 public:
  /// Current simulation time (the timestamp of the last fired event).
  SimTime now() const { return now_; }

  /// Schedules `action` to fire `delay` after now().
  void Schedule(SimTime delay, std::function<void()> action);

  /// Schedules `action` at absolute time `when` (must be >= now()).
  void ScheduleAt(SimTime when, std::function<void()> action);

  /// Fires events until the queue drains. Returns events fired.
  std::size_t RunAll();

  /// Fires events with timestamp <= deadline; time advances to `deadline`
  /// even if the queue drains earlier. Returns events fired.
  std::size_t RunUntil(SimTime deadline);

  bool empty() const { return events_.empty(); }
  std::size_t pending() const { return events_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // tie-break: FIFO for equal timestamps
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace siot::iotnet

#endif  // SIOT_IOTNET_EVENT_QUEUE_H_
