// Copyright 2026 The siot-trust Authors.

#include "iotnet/coordinator.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace siot::iotnet {

CoordinatorService::CoordinatorService(IoTNetwork* network)
    : network_(network) {
  SIOT_CHECK(network != nullptr);
  network_->coordinator().stack().OnReceive(
      [this](const AppMessage& message) {
        if (message.type != PayloadType::kReport) return;
        reports_.push_back(Report{message.source, message.tag,
                                  message.value,
                                  network_->events().now()});
      });
}

std::vector<Report> CoordinatorService::ReportsWithTag(
    std::int64_t tag) const {
  std::vector<Report> out;
  for (const Report& report : reports_) {
    if (report.tag == tag) out.push_back(report);
  }
  return out;
}

std::string CoordinatorService::ExportCsv() const {
  std::string out = "source,tag,value,received_at_us\n";
  for (const Report& report : reports_) {
    out += StrFormat("%u,%lld,%.6f,%llu\n", report.source,
                     static_cast<long long>(report.tag), report.value,
                     static_cast<unsigned long long>(report.received_at));
  }
  return out;
}

}  // namespace siot::iotnet
