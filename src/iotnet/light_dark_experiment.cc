// Copyright 2026 The siot-trust Authors.

#include "iotnet/light_dark_experiment.h"

#include <unordered_map>

#include "common/macros.h"
#include "trust/environment.h"
#include "trust/update.h"

namespace siot::iotnet {

namespace {

std::vector<double> RunMode(const LightDarkExperimentConfig& config,
                            bool environment_aware) {
  IoTNetwork network(config.network);
  network.FormNetwork();
  Rng rng(MixSeed(config.network.seed, environment_aware ? 0x11D1 : 0x11D2));

  // Attach optical sensors to every trustee.
  for (DeviceAddr a = 0; a < network.device_count(); ++a) {
    if (network.device(a).is_trustee()) {
      network.device(a).AttachOpticalSensor(
          OpticalSensor(MixSeed(config.network.seed, a)));
    }
  }

  const std::vector<DeviceAddr> trustors =
      network.DevicesByRole(DeviceRole::kTrustor);
  const trust::ForgettingFactors beta =
      trust::ForgettingFactors::Uniform(config.beta);

  // Per (trustor, trustee) estimates of the *intrinsic* service quality.
  std::unordered_map<std::uint64_t, trust::OutcomeEstimates> estimates;
  for (const DeviceAddr x : trustors) {
    for (const DeviceAddr y :
         network.TrusteesInGroup(network.device(x).group())) {
      trust::OutcomeEstimates initial;
      initial.success_rate = 0.6;  // mildly optimistic first contact
      initial.gain = 0.6;
      initial.damage = 0.1;
      initial.cost = 0.05;
      estimates[(static_cast<std::uint64_t>(x) << 32) | y] = initial;
    }
  }

  std::vector<double> profit_per_round(config.experiment_runs, 0.0);
  for (std::size_t round = 0; round < config.experiment_runs; ++round) {
    const bool dark =
        round >= config.dark_start && round < config.light_again;
    const LightLevel light =
        dark ? config.dark_level : config.light_level;
    const bool final_light_phase = round >= config.light_again;

    double round_profit = 0.0;
    for (const DeviceAddr x : trustors) {
      const auto group_trustees =
          network.TrusteesInGroup(network.device(x).group());
      // Rank by expected net profit under CURRENT conditions: intrinsic
      // estimates scaled by the environment indicator when the model is
      // environment-aware (the indicator is the measurable light level).
      std::vector<trust::OutcomeEstimates> scored;
      std::vector<DeviceAddr> available;
      for (const DeviceAddr y : group_trustees) {
        const bool malicious = network.device(y).role() ==
                               DeviceRole::kDishonestTrustee;
        // Free riders are absent before the final light phase.
        if (malicious && !final_light_phase) continue;
        trust::OutcomeEstimates e =
            estimates[(static_cast<std::uint64_t>(x) << 32) | y];
        if (environment_aware) {
          e.success_rate *= light;  // expected outcome here and now
          e.gain *= light;
        }
        scored.push_back(e);
        available.push_back(y);
      }
      if (available.empty()) continue;
      const auto best = trust::SelectBestCandidate(
          scored, trust::SelectionStrategy::kMaxNetProfit);
      SIOT_CHECK(best.ok());
      const DeviceAddr y = available[best.value()];
      NodeDevice& trustee = network.device(y);
      const bool malicious =
          trustee.role() == DeviceRole::kDishonestTrustee;

      // Serve the task: acquire through the optical sensor under the
      // current light; malicious devices sometimes return junk.
      double quality =
          trustee.optical_sensor().Acquire(light) *
          (malicious ? config.malicious_competence
                     : config.honest_competence);
      if (malicious &&
          rng.Bernoulli(config.malicious_misbehave_probability)) {
        quality *= rng.Uniform(0.0, 0.3);  // junk response
      }
      const bool success = quality >= 0.5 * light || quality >= 0.5;
      round_profit += config.gain_units * quality -
                      0.05 * config.gain_units;  // small fixed cost

      // Post-evaluation of the intrinsic estimates.
      trust::DelegationOutcome outcome;
      outcome.success = success;
      outcome.gain = quality;
      outcome.damage = success ? 0.0 : 0.4;
      outcome.cost = 0.05;
      const std::uint64_t key = (static_cast<std::uint64_t>(x) << 32) | y;
      if (environment_aware) {
        estimates[key] = trust::UpdateEstimatesWithEnvironment(
            estimates[key], outcome, beta, light);
      } else {
        estimates[key] =
            trust::UpdateEstimates(estimates[key], outcome, beta);
      }
    }
    profit_per_round[round] = round_profit;
  }
  return profit_per_round;
}

}  // namespace

LightDarkResult RunLightDarkExperiment(
    const LightDarkExperimentConfig& config) {
  SIOT_CHECK(config.dark_start < config.light_again);
  SIOT_CHECK(config.light_again <= config.experiment_runs);
  LightDarkResult result;
  result.with_model_profit = RunMode(config, /*environment_aware=*/true);
  result.without_model_profit =
      RunMode(config, /*environment_aware=*/false);
  auto phase_mean = [&](const std::vector<double>& series) {
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t i = config.light_again; i < series.size(); ++i) {
      sum += series[i];
      ++count;
    }
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  };
  result.final_phase_with_model = phase_mean(result.with_model_profit);
  result.final_phase_without_model =
      phase_mean(result.without_model_profit);
  return result;
}

}  // namespace siot::iotnet
