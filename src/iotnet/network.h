// Copyright 2026 The siot-trust Authors.
// The experimental IoT network of §5.2: a coordinator that starts the
// IEEE 802.15.4 network plus five groups, each with two trustors, two
// honest trustees, and two dishonest trustees. Owns the event queue, the
// radio medium, and the device table; ZStack instances transmit through
// it.

#ifndef SIOT_IOTNET_NETWORK_H_
#define SIOT_IOTNET_NETWORK_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "iotnet/device.h"
#include "iotnet/event_queue.h"
#include "iotnet/radio.h"
#include "iotnet/zstack.h"

namespace siot::iotnet {

/// Network-wide configuration.
struct NetworkConfig {
  RadioParams radio;
  MacParams mac;
  PowerParams power;
  /// Groups and composition (§5.2 defaults).
  std::size_t groups = 5;
  std::size_t trustors_per_group = 2;
  std::size_t honest_trustees_per_group = 2;
  std::size_t dishonest_trustees_per_group = 2;
  /// Devices of a group are placed on a circle of this radius around the
  /// group center; groups sit on a larger circle around the coordinator.
  double group_radius_m = 8.0;
  double deployment_radius_m = 60.0;
  std::uint64_t seed = 1;
};

/// The simulated deployment.
class IoTNetwork {
 public:
  explicit IoTNetwork(const NetworkConfig& config);

  // Not movable: stacks hold back-pointers.
  IoTNetwork(const IoTNetwork&) = delete;
  IoTNetwork& operator=(const IoTNetwork&) = delete;

  EventQueue& events() { return events_; }
  RadioMedium& radio() { return radio_; }
  Rng& rng() { return rng_; }

  std::size_t device_count() const { return devices_.size(); }
  NodeDevice& device(DeviceAddr address);
  const NodeDevice& device(DeviceAddr address) const;
  NodeDevice& coordinator() { return device(kCoordinatorAddr); }

  /// Devices with the given role, in address order.
  std::vector<DeviceAddr> DevicesByRole(DeviceRole role) const;
  /// Trustee devices (honest + dishonest) in `group`.
  std::vector<DeviceAddr> TrusteesInGroup(std::size_t group) const;

  /// ZDO network formation: the coordinator scans, picks a channel, and
  /// every device associates. Runs the event queue until formation
  /// completes.
  void FormNetwork();
  bool formed() const { return formed_; }

  /// Internal (called by ZStack): move one fragment over the air.
  /// Delivers to the destination stack after the air time, or reports
  /// failure (out of range / loss) to the sender's retry logic via the
  /// return flag of the scheduled completion.
  void TransmitOverAir(DeviceAddr from, DeviceAddr to,
                       const AppMessage& message, std::size_t fragment_index,
                       std::size_t fragment_count, std::size_t bytes,
                       std::function<void(bool delivered)> on_complete);

 private:
  NetworkConfig config_;
  EventQueue events_;
  RadioMedium radio_;
  Rng rng_;
  std::vector<std::unique_ptr<NodeDevice>> devices_;
  bool formed_ = false;
};

}  // namespace siot::iotnet

#endif  // SIOT_IOTNET_NETWORK_H_
