// Copyright 2026 The siot-trust Authors.
// §5.4 / Fig. 8 — inferential transfer of trust on the experimental IoT
// network. Each trustor requests a task with two characteristics that were
// exercised by different previous tasks; dishonest trustees performed
// maliciously on one particular characteristic before. With the proposed
// model the trustor infers the trustworthiness of the new task from the
// analogous previous tasks (Eq. 4) and mostly selects honest devices;
// without it the task counts as brand new and selection is uninformed.

#ifndef SIOT_IOTNET_INFERENCE_EXPERIMENT_H_
#define SIOT_IOTNET_INFERENCE_EXPERIMENT_H_

#include <vector>

#include "iotnet/network.h"

namespace siot::iotnet {

/// Configuration of the Fig. 8 experiment.
struct InferenceExperimentConfig {
  /// Experiment repetitions (x-axis of Fig. 8).
  std::size_t experiment_runs = 50;
  /// Characteristics in the previous-task universe.
  std::size_t characteristic_count = 4;
  /// Honest trustees' per-characteristic competence range.
  double honest_low = 0.70, honest_high = 0.95;
  /// Dishonest trustees' competence on ordinary characteristics.
  double dishonest_low = 0.60, dishonest_high = 0.85;
  /// Dishonest trustees' competence on their maliciously-handled
  /// characteristic.
  double malicious_low = 0.05, malicious_high = 0.20;
  /// Observation noise on experienced trustworthiness per run.
  double observation_noise_sd = 0.05;
  NetworkConfig network;
};

/// Per-run outcome.
struct InferenceRunResult {
  /// Fraction of trustors that selected an honest device.
  double honest_fraction_with_model = 0.0;
  double honest_fraction_without_model = 0.0;
};

/// Full Fig. 8 series.
struct InferenceExperimentResult {
  std::vector<InferenceRunResult> runs;
  double mean_with_model = 0.0;
  double mean_without_model = 0.0;
};

/// Runs the Fig. 8 experiment (both selection modes over the same runs).
InferenceExperimentResult RunInferenceExperiment(
    const InferenceExperimentConfig& config);

}  // namespace siot::iotnet

#endif  // SIOT_IOTNET_INFERENCE_EXPERIMENT_H_
