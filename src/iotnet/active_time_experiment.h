// Copyright 2026 The siot-trust Authors.
// §5.6 / Fig. 14 — detecting the fragment-packet cost attack. Dishonest
// trustees answer task requests with many tiny, deliberately spaced
// fragments, stretching the trustor's radio-active time (and battery).
// Trustors that evaluate gain AND cost (the proposed model) learn to avoid
// the attackers, so the average active time collapses; gain-only trustors
// keep serving the attack.

#ifndef SIOT_IOTNET_ACTIVE_TIME_EXPERIMENT_H_
#define SIOT_IOTNET_ACTIVE_TIME_EXPERIMENT_H_

#include <vector>

#include "iotnet/network.h"

namespace siot::iotnet {

/// Configuration of the Fig. 14 experiment.
struct ActiveTimeExperimentConfig {
  /// Tasks each trustor requests (x-axis of Fig. 14).
  std::size_t tasks_per_trustor = 50;
  /// Response payload bytes (same useful content from everyone).
  std::size_t response_bytes = 400;
  /// Attack shape: fragment size and inter-fragment gap of dishonest
  /// trustees.
  std::size_t attack_fragment_bytes = 8;
  SimTime attack_fragment_gap = 12 * kMillisecond;
  /// Gain the trustor books for a served task; attackers advertise a
  /// slightly higher gain (they promote a single aspect's value).
  double honest_gain = 0.80;
  double dishonest_gain = 0.88;
  /// Weight of the OLD estimate per Eq. 19 (see EXPERIMENTS.md on the
  /// paper's β convention).
  double beta = 0.9;
  /// Cost normalization: active milliseconds per unit cost.
  double cost_ms_per_unit = 1000.0;
  NetworkConfig network;
};

/// Per-task-index averages over trustors.
struct ActiveTimeResult {
  /// Mean radio-active time per task (ms), indexed by task number, for
  /// trustors using gain+cost (proposed) vs gain-only selection.
  std::vector<double> with_model_ms;
  std::vector<double> without_model_ms;
  /// Mean over the final 10 tasks.
  double final_with_model_ms = 0.0;
  double final_without_model_ms = 0.0;
};

/// Runs the Fig. 14 experiment (both selection modes on identical
/// networks/seeds).
ActiveTimeResult RunActiveTimeExperiment(
    const ActiveTimeExperimentConfig& config);

}  // namespace siot::iotnet

#endif  // SIOT_IOTNET_ACTIVE_TIME_EXPERIMENT_H_
