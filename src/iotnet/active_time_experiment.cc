// Copyright 2026 The siot-trust Authors.

#include "iotnet/active_time_experiment.h"

#include <unordered_map>

#include "common/macros.h"
#include "trust/update.h"

namespace siot::iotnet {

namespace {

/// One selection mode's pass over the whole task sequence.
std::vector<double> RunMode(const ActiveTimeExperimentConfig& config,
                            bool use_cost) {
  IoTNetwork network(config.network);
  network.FormNetwork();

  const std::vector<DeviceAddr> trustors =
      network.DevicesByRole(DeviceRole::kTrustor);

  // Per (trustor, trustee) outcome estimates. Gains start at the
  // advertised values (the attack: a slightly shinier gain), costs start
  // unknown-low so everyone gets tried.
  std::unordered_map<std::uint64_t, trust::OutcomeEstimates> estimates;
  for (const DeviceAddr x : trustors) {
    for (const DeviceAddr y :
         network.TrusteesInGroup(network.device(x).group())) {
      trust::OutcomeEstimates initial;
      initial.success_rate = 0.9;
      initial.gain = network.device(y).role() ==
                             DeviceRole::kDishonestTrustee
                         ? config.dishonest_gain
                         : config.honest_gain;
      initial.damage = 0.1;
      initial.cost = 0.0;
      estimates[(static_cast<std::uint64_t>(x) << 32) | y] = initial;
    }
  }
  const trust::ForgettingFactors beta =
      trust::ForgettingFactors::Uniform(config.beta);

  // Response bookkeeping: when a trustor receives the full response, we
  // close the interaction and measure the active window.
  struct PendingInteraction {
    SimTime started = 0;
    bool done = false;
    SimTime completed = 0;
  };
  std::unordered_map<DeviceAddr, PendingInteraction> pending;

  // Trustee behavior: answer task requests with the (possibly attacked)
  // response.
  for (DeviceAddr a = 0; a < network.device_count(); ++a) {
    NodeDevice& device = network.device(a);
    if (!device.is_trustee()) continue;
    const bool dishonest = device.role() == DeviceRole::kDishonestTrustee;
    device.stack().OnReceive([&network, &config, a,
                              dishonest](const AppMessage& request) {
      if (request.type != PayloadType::kTaskRequest) return;
      AppMessage response;
      response.source = a;
      response.destination = request.source;
      response.type = PayloadType::kTaskResponse;
      response.payload_bytes = config.response_bytes;
      response.tag = request.tag;
      response.value = 1.0;  // served
      if (dishonest) {
        // The fragment-packet attack: tiny fragments, long gaps.
        response.force_fragment_size = config.attack_fragment_bytes;
        response.fragment_gap = config.attack_fragment_gap;
      }
      network.device(a).stack().SendMessage(response);
    });
  }
  // Trustor response handler: close the pending interaction.
  for (const DeviceAddr x : trustors) {
    network.device(x).stack().OnReceive(
        [&network, &pending, x](const AppMessage& response) {
          if (response.type != PayloadType::kTaskResponse) return;
          auto& interaction = pending[x];
          interaction.done = true;
          interaction.completed = network.events().now();
        });
  }

  std::vector<double> mean_active_ms(config.tasks_per_trustor, 0.0);
  for (std::size_t task = 0; task < config.tasks_per_trustor; ++task) {
    double task_active_ms_sum = 0.0;
    for (const DeviceAddr x : trustors) {
      const auto group_trustees =
          network.TrusteesInGroup(network.device(x).group());
      // Select by estimated gain only, or by full Eq. 23 net profit.
      std::vector<trust::OutcomeEstimates> scored;
      scored.reserve(group_trustees.size());
      for (const DeviceAddr y : group_trustees) {
        trust::OutcomeEstimates e =
            estimates[(static_cast<std::uint64_t>(x) << 32) | y];
        if (!use_cost) {
          // Gain-only selection: blind the economics except the gain.
          e.success_rate = 1.0;
          e.damage = 0.0;
          e.cost = 0.0;
        }
        scored.push_back(e);
      }
      const auto best = trust::SelectBestCandidate(
          scored, trust::SelectionStrategy::kMaxNetProfit);
      SIOT_CHECK(best.ok());
      const DeviceAddr y = group_trustees[best.value()];

      // Run the interaction to completion on the event queue.
      pending[x] = PendingInteraction{network.events().now(), false, 0};
      AppMessage request;
      request.source = x;
      request.destination = y;
      request.type = PayloadType::kTaskRequest;
      request.payload_bytes = 24;
      request.tag = static_cast<std::int64_t>(task);
      network.device(x).stack().SendMessage(request);
      network.events().RunAll();

      const PendingInteraction& interaction = pending[x];
      SIOT_CHECK_MSG(interaction.done,
                     "trustor %u: response lost for task %zu", x, task);
      const double active_ms =
          static_cast<double>(interaction.completed -
                              interaction.started) /
          static_cast<double>(kMillisecond);
      task_active_ms_sum += active_ms;

      // Post-evaluation: the realized cost is the active time.
      trust::DelegationOutcome outcome;
      outcome.success = true;
      outcome.gain = network.device(y).role() ==
                             DeviceRole::kDishonestTrustee
                         ? config.dishonest_gain
                         : config.honest_gain;
      outcome.cost = active_ms / config.cost_ms_per_unit;
      const std::uint64_t key = (static_cast<std::uint64_t>(x) << 32) | y;
      estimates[key] =
          trust::UpdateEstimates(estimates[key], outcome, beta);
    }
    mean_active_ms[task] =
        task_active_ms_sum / static_cast<double>(trustors.size());
  }
  return mean_active_ms;
}

}  // namespace

ActiveTimeResult RunActiveTimeExperiment(
    const ActiveTimeExperimentConfig& config) {
  ActiveTimeResult result;
  result.with_model_ms = RunMode(config, /*use_cost=*/true);
  result.without_model_ms = RunMode(config, /*use_cost=*/false);
  auto tail_mean = [](const std::vector<double>& series) {
    const std::size_t n = series.size();
    const std::size_t start = n > 10 ? n - 10 : 0;
    double sum = 0.0;
    for (std::size_t i = start; i < n; ++i) sum += series[i];
    return sum / static_cast<double>(n - start);
  };
  result.final_with_model_ms = tail_mean(result.with_model_ms);
  result.final_without_model_ms = tail_mean(result.without_model_ms);
  return result;
}

}  // namespace siot::iotnet
