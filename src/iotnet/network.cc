// Copyright 2026 The siot-trust Authors.

#include "iotnet/network.h"

#include <cmath>
#include <numbers>

#include "common/macros.h"

namespace siot::iotnet {

IoTNetwork::IoTNetwork(const NetworkConfig& config)
    : config_(config),
      radio_(config.radio, MixSeed(config.seed, 0xAD10)),
      rng_(MixSeed(config.seed, 0x4E7)) {
  // Coordinator at the center.
  radio_.AddDevice({0.0, 0.0});
  devices_.push_back(std::make_unique<NodeDevice>(
      this, kCoordinatorAddr, DeviceRole::kCoordinator, /*group=*/0,
      config.mac, config.power, MixSeed(config.seed, 1)));

  // Groups on a circle around the coordinator, members on a small circle
  // around each group center (all well within the 250 m radio range).
  const std::size_t per_group = config.trustors_per_group +
                                config.honest_trustees_per_group +
                                config.dishonest_trustees_per_group;
  for (std::size_t g = 0; g < config.groups; ++g) {
    const double group_angle = 2.0 * std::numbers::pi *
                               static_cast<double>(g) /
                               static_cast<double>(config.groups);
    const Position center{
        config.deployment_radius_m * std::cos(group_angle),
        config.deployment_radius_m * std::sin(group_angle)};
    for (std::size_t m = 0; m < per_group; ++m) {
      const double member_angle = 2.0 * std::numbers::pi *
                                  static_cast<double>(m) /
                                  static_cast<double>(per_group);
      const Position position{
          center.x + config.group_radius_m * std::cos(member_angle),
          center.y + config.group_radius_m * std::sin(member_angle)};
      DeviceRole role;
      if (m < config.trustors_per_group) {
        role = DeviceRole::kTrustor;
      } else if (m < config.trustors_per_group +
                         config.honest_trustees_per_group) {
        role = DeviceRole::kHonestTrustee;
      } else {
        role = DeviceRole::kDishonestTrustee;
      }
      const auto address = static_cast<DeviceAddr>(devices_.size());
      radio_.AddDevice(position);
      devices_.push_back(std::make_unique<NodeDevice>(
          this, address, role, g + 1, config.mac, config.power,
          MixSeed(config.seed, address + 100)));
    }
  }
}

NodeDevice& IoTNetwork::device(DeviceAddr address) {
  SIOT_CHECK(address < devices_.size());
  return *devices_[address];
}

const NodeDevice& IoTNetwork::device(DeviceAddr address) const {
  SIOT_CHECK(address < devices_.size());
  return *devices_[address];
}

std::vector<DeviceAddr> IoTNetwork::DevicesByRole(DeviceRole role) const {
  std::vector<DeviceAddr> out;
  for (DeviceAddr a = 0; a < devices_.size(); ++a) {
    if (devices_[a]->role() == role) out.push_back(a);
  }
  return out;
}

std::vector<DeviceAddr> IoTNetwork::TrusteesInGroup(std::size_t group) const {
  std::vector<DeviceAddr> out;
  for (DeviceAddr a = 0; a < devices_.size(); ++a) {
    if (devices_[a]->group() == group && devices_[a]->is_trustee()) {
      out.push_back(a);
    }
  }
  return out;
}

void IoTNetwork::FormNetwork() {
  // "The coordinator scans the RF environment, chooses a channel and a
  // network identifier, and starts the network" — modeled as a scan pause
  // followed by a beacon, after which every device associates.
  const SimTime scan_time = 50 * kMillisecond;
  events_.Schedule(scan_time, [this] {
    for (auto& device : devices_) {
      if (device->address() == kCoordinatorAddr) continue;
      device->stack().Associate();
    }
    formed_ = true;
  });
  events_.RunUntil(events_.now() + scan_time);
  SIOT_CHECK(formed_);
}

void IoTNetwork::TransmitOverAir(DeviceAddr from, DeviceAddr to,
                                 const AppMessage& message,
                                 std::size_t fragment_index,
                                 std::size_t fragment_count,
                                 std::size_t bytes,
                                 std::function<void(bool)> on_complete) {
  SIOT_CHECK(to != kBroadcastAddr);  // experiments use unicast only
  const SimTime air_time = radio_.TransmissionTime(bytes);
  const bool delivered = radio_.AttemptDelivery(from, to);
  events_.Schedule(air_time, [this, to, message, fragment_index,
                              fragment_count, air_time, delivered,
                              on_complete = std::move(on_complete)] {
    if (delivered) {
      device(to).stack().DeliverFragment(message, fragment_index,
                                         fragment_count, air_time);
    }
    if (on_complete) on_complete(delivered);
  });
}

}  // namespace siot::iotnet
