// Copyright 2026 The siot-trust Authors.

#include "iotnet/zstack.h"

#include "common/macros.h"
#include "iotnet/network.h"

namespace siot::iotnet {

ZStack::ZStack(IoTNetwork* network, DeviceAddr self, MacParams params,
               std::uint64_t seed)
    : network_(network), self_(self), params_(params), rng_(seed) {
  SIOT_CHECK(network != nullptr);
  SIOT_CHECK(params_.max_frame_payload > 0);
}

void ZStack::Associate() {
  // ZDO association request/response handshake with the coordinator: one
  // small frame each way; we account the round trip as active time.
  const SimTime handshake =
      2 * network_->radio().TransmissionTime(params_.header_bytes + 12) +
      params_.ifs;
  active_time_ += handshake;
  ++stats_.zdo_associations;
  associated_ = true;
}

void ZStack::SendMessage(const AppMessage& message) {
  SIOT_CHECK_MSG(associated_ || self_ == kCoordinatorAddr,
                 "device %u sending before association", self_);
  ++stats_.af_messages_sent;
  // APS fragmentation. A sender may force smaller fragments than the MAC
  // allows (never larger) — the §5.6 attack path.
  std::size_t fragment_payload = params_.max_frame_payload;
  if (message.force_fragment_size != 0) {
    fragment_payload =
        std::min(fragment_payload, message.force_fragment_size);
  }
  const std::size_t fragment_count =
      message.payload_bytes == 0
          ? 1
          : (message.payload_bytes + fragment_payload - 1) /
                fragment_payload;
  std::size_t remaining = message.payload_bytes;
  for (std::size_t i = 0; i < fragment_count; ++i) {
    const std::size_t bytes = std::min(remaining, fragment_payload);
    remaining -= bytes;
    TransmitFragment(message, i, fragment_count, bytes, /*attempt=*/0);
  }
}

void ZStack::TransmitFragment(const AppMessage& message,
                              std::size_t fragment_index,
                              std::size_t fragment_count, std::size_t bytes,
                              std::size_t attempt) {
  // ZMAC CSMA/CA: random backoff, then transmit. Both the channel sensing
  // window and the on-air time keep the radio active.
  const SimTime backoff =
      params_.min_backoff +
      rng_.NextBounded(params_.max_backoff - params_.min_backoff + 1);
  const std::size_t frame_bytes = bytes + params_.header_bytes;
  const SimTime air_time = network_->radio().TransmissionTime(frame_bytes);
  // Serialize this device's own transmissions: each fragment is scheduled
  // after the previous one's completion via the queue ordering; the
  // inter-frame spacing models the MAC's IFS, and a sender-imposed
  // fragment gap (the §5.6 attack) stretches the schedule further.
  const SimTime per_fragment =
      params_.ifs + air_time + message.fragment_gap;
  const SimTime start_delay =
      backoff + static_cast<SimTime>(fragment_index) * per_fragment;
  network_->events().Schedule(start_delay, [this, message, fragment_index,
                                            fragment_count, bytes, attempt,
                                            air_time] {
    active_time_ += air_time;
    ++stats_.mac_frames_sent;
    network_->TransmitOverAir(
        self_, message.destination, message, fragment_index, fragment_count,
        bytes + params_.header_bytes,
        [this, message, fragment_index, fragment_count, bytes,
         attempt](bool delivered) {
          if (delivered) return;
          if (attempt + 1 <= params_.max_retries) {
            ++stats_.mac_retries;
            TransmitFragment(message, fragment_index, fragment_count, bytes,
                             attempt + 1);
          } else {
            ++stats_.mac_drops;
          }
        });
    ++stats_.aps_fragments_sent;
  });
}

void ZStack::DeliverFragment(const AppMessage& message,
                             std::size_t fragment_index,
                             std::size_t fragment_count, SimTime air_time) {
  (void)fragment_index;
  active_time_ += air_time;  // receive-active
  ++stats_.aps_fragments_received;
  const auto key = std::make_pair(message.source, message.tag);
  const std::size_t seen = ++reassembly_[key];
  if (seen < fragment_count) return;
  reassembly_.erase(key);
  ++stats_.af_messages_received;
  if (receive_handler_) receive_handler_(message);
}

}  // namespace siot::iotnet
