// Copyright 2026 The siot-trust Authors.

#include "iotnet/event_queue.h"

#include "common/macros.h"

namespace siot::iotnet {

void EventQueue::Schedule(SimTime delay, std::function<void()> action) {
  ScheduleAt(now_ + delay, std::move(action));
}

void EventQueue::ScheduleAt(SimTime when, std::function<void()> action) {
  SIOT_CHECK_MSG(when >= now_, "event scheduled in the past");
  events_.push(Event{when, next_seq_++, std::move(action)});
}

std::size_t EventQueue::RunAll() {
  std::size_t fired = 0;
  while (!events_.empty()) {
    // Move out the action before popping: the action may schedule more.
    Event event = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = event.when;
    event.action();
    ++fired;
  }
  return fired;
}

std::size_t EventQueue::RunUntil(SimTime deadline) {
  std::size_t fired = 0;
  while (!events_.empty() && events_.top().when <= deadline) {
    Event event = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = event.when;
    event.action();
    ++fired;
  }
  now_ = deadline;
  return fired;
}

}  // namespace siot::iotnet
