// Copyright 2026 The siot-trust Authors.
// Random graph generators. All are deterministic in their Rng argument.
//
// The community generator is the workhorse: it produces graphs with planted
// dense circles (the structure of the SNAP ego networks behind the paper's
// Table 1) whose clustering, modularity, and path statistics can be
// calibrated via CommunityGraphParams.

#ifndef SIOT_GRAPH_GENERATORS_H_
#define SIOT_GRAPH_GENERATORS_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/graph.h"

namespace siot::graph {

/// G(n, p): each pair independently connected with probability p.
Graph ErdosRenyiGnp(std::size_t n, double p, Rng& rng);

/// G(n, m): exactly m distinct edges chosen uniformly.
Graph ErdosRenyiGnm(std::size_t n, std::size_t m, Rng& rng);

/// Watts–Strogatz small world: ring of n nodes, each linked to k nearest
/// neighbors (k even), each edge rewired with probability beta.
Graph WattsStrogatz(std::size_t n, std::size_t k, double beta, Rng& rng);

/// Barabási–Albert preferential attachment: each new node attaches m edges.
Graph BarabasiAlbert(std::size_t n, std::size_t m, Rng& rng);

/// Parameters of the planted-community (ego-circle) generator.
///
/// Structure: communities get sizes from a power-law (size_alpha > 0) or a
/// lognormal (size_alpha == 0, spread set by size_evenness). Intra-community
/// pairs are wired with probability p_intra (this pins the clustering
/// coefficient). Inter-community wiring is structured: the communities form
/// a ring (ring_bridges edges between adjacent communities), plus
/// shortcut_bridges random community-pair bridges (these control modularity
/// and average path length), plus optional uniform background wiring
/// p_inter. The tail_communities smallest communities are taken off the
/// ring and chained off one ring community instead, which stretches the
/// diameter the way real ego networks' peripheral circles do without moving
/// the average path length much.
struct CommunityGraphParams {
  /// Total node count.
  std::size_t node_count = 300;
  /// Number of planted communities.
  std::size_t community_count = 20;
  /// Power-law exponent for community sizes (size of rank-i community
  /// proportional to (i+1)^-size_alpha). 0 selects the lognormal model.
  double size_alpha = 0.0;
  /// Lognormal spread when size_alpha == 0: larger is more even.
  double size_evenness = 2.0;
  /// Minimum community size (>= 2).
  std::size_t min_community_size = 2;
  /// Intra-community edge probability (drives clustering coefficient).
  double p_intra = 0.55;
  /// Communities of at most this size are wired as cliques regardless of
  /// p_intra (small friend circles are cliques in ego networks; this also
  /// keeps Louvain from absorbing them). 0 disables.
  std::size_t clique_size_threshold = 0;
  /// Uniform background inter-community edge probability.
  double p_inter = 0.0;
  /// Edges between each ring-adjacent community pair.
  std::size_t ring_bridges = 2;
  /// Number of (largest) communities forming the ring core. Communities
  /// outside the core attach to one of the biggest communities by
  /// spoke_bridges edges instead — attaching small circles to high-degree
  /// communities keeps Louvain from merging them (the null-model term
  /// d_A * d_B / 2m beats a single bridge edge). 0 means all non-tail
  /// communities are on the ring.
  std::size_t ring_core = 0;
  /// Edges from each non-core community to a randomly chosen top-3
  /// community.
  std::size_t spoke_bridges = 1;
  /// Extra random community-pair bridges (1 edge each).
  std::size_t shortcut_bridges = 0;
  /// The tail_communities smallest communities are chained off the ring.
  std::size_t tail_communities = 0;
  /// Fraction of nodes promoted to hubs with links into many communities
  /// (ego nodes); raises max degree and shrinks the diameter.
  double hub_fraction = 0.0;
  /// Edges added from each hub to random non-neighbors.
  std::size_t hub_extra_edges = 0;
  /// If nonzero, the generator adds/removes edges at the end until the edge
  /// count equals this target exactly. Additions prefer intra-community
  /// pairs so the planted structure survives the adjustment.
  std::size_t target_edge_count = 0;
  /// Ensure the graph is connected by bridging components.
  bool force_connected = true;
};

/// Community assignment produced alongside a generated graph.
struct CommunityGraph {
  Graph graph;
  /// Planted community id per node.
  std::vector<std::uint32_t> community;
};

/// Generates a planted-community graph; see CommunityGraphParams.
StatusOr<CommunityGraph> GenerateCommunityGraph(
    const CommunityGraphParams& params, Rng& rng);

/// Adjusts `builder` by random additions (within allowed pairs) or removals
/// until it has exactly `target` edges. Used to pin Table-1 edge counts.
void AdjustEdgeCount(GraphBuilder& builder, std::size_t target, Rng& rng);

/// Like AdjustEdgeCount, but additions draw both endpoints from the same
/// community (falling back to uniform pairs once blocks saturate), so the
/// planted structure survives the adjustment.
void AdjustEdgeCountWithCommunities(
    GraphBuilder& builder, std::size_t target,
    const std::vector<std::uint32_t>& community, Rng& rng);

}  // namespace siot::graph

#endif  // SIOT_GRAPH_GENERATORS_H_
