// Copyright 2026 The siot-trust Authors.

#include "graph/community.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/macros.h"

namespace siot::graph {

namespace {

/// Weighted multigraph used for Louvain aggregation levels. Nodes are dense
/// ids; self-loop weight stores (twice) the internal weight of an
/// aggregated community.
struct WeightedGraph {
  // adjacency[v] = list of (neighbor, weight); self loops allowed.
  std::vector<std::vector<std::pair<std::uint32_t, double>>> adjacency;
  double total_weight = 0.0;  // sum of edge weights, self-loops once

  std::size_t size() const { return adjacency.size(); }

  double WeightedDegree(std::uint32_t v) const {
    double d = 0.0;
    for (const auto& [u, w] : adjacency[v]) {
      d += w;
      if (u == v) d += w;  // self loop counts twice in degree
    }
    return d;
  }
};

WeightedGraph FromGraph(const Graph& graph) {
  WeightedGraph wg;
  wg.adjacency.resize(graph.node_count());
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    for (NodeId u : graph.Neighbors(v)) {
      wg.adjacency[v].push_back({u, 1.0});
    }
  }
  wg.total_weight = static_cast<double>(graph.edge_count());
  return wg;
}

/// One Louvain local-move phase. Returns the node->community map and whether
/// any move improved modularity.
bool LocalMove(const WeightedGraph& wg, const LouvainParams& params,
               Rng& rng, std::vector<std::uint32_t>* community) {
  const std::size_t n = wg.size();
  community->resize(n);
  std::iota(community->begin(), community->end(), 0);

  std::vector<double> node_degree(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    node_degree[v] = wg.WeightedDegree(v);
  }
  // Total degree per community.
  std::vector<double> community_degree = node_degree;
  const double two_m = 2.0 * wg.total_weight;
  if (two_m <= 0.0) return false;

  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  bool any_improvement = false;
  for (std::size_t sweep = 0; sweep < params.max_sweeps_per_level; ++sweep) {
    double sweep_gain = 0.0;
    for (std::uint32_t v : order) {
      const std::uint32_t old_c = (*community)[v];
      // Weight from v to each adjacent community (self-loops excluded:
      // they move with v and do not affect the gain comparison).
      std::unordered_map<std::uint32_t, double> links;
      for (const auto& [u, w] : wg.adjacency[v]) {
        if (u == v) continue;
        links[(*community)[u]] += w;
      }
      // Detach v.
      community_degree[old_c] -= node_degree[v];
      const double base_links = links.contains(old_c) ? links[old_c] : 0.0;
      // Gain of joining community c: k_{v,c}/m - deg_c * k_v / (2 m^2)
      // (constant terms cancel when comparing).
      std::uint32_t best_c = old_c;
      double best_gain = base_links - community_degree[old_c] *
                                          node_degree[v] / two_m;
      for (const auto& [c, k_vc] : links) {
        if (c == old_c) continue;
        const double gain =
            k_vc - community_degree[c] * node_degree[v] / two_m;
        if (gain > best_gain + 1e-12) {
          best_gain = gain;
          best_c = c;
        }
      }
      (*community)[v] = best_c;
      community_degree[best_c] += node_degree[v];
      if (best_c != old_c) {
        const double old_gain =
            base_links - community_degree[old_c] * node_degree[v] / two_m;
        sweep_gain += best_gain - old_gain;
        any_improvement = true;
      }
    }
    if (sweep_gain < params.min_gain) break;
  }
  return any_improvement;
}

/// Aggregates communities into a smaller weighted graph.
WeightedGraph Aggregate(const WeightedGraph& wg,
                        const std::vector<std::uint32_t>& community,
                        std::size_t community_count) {
  WeightedGraph out;
  out.adjacency.resize(community_count);
  out.total_weight = wg.total_weight;
  std::vector<std::unordered_map<std::uint32_t, double>> accum(
      community_count);
  for (std::uint32_t v = 0; v < wg.size(); ++v) {
    const std::uint32_t cv = community[v];
    for (const auto& [u, w] : wg.adjacency[v]) {
      const std::uint32_t cu = community[u];
      if (u == v) {
        accum[cv][cv] += w;  // self loop carried over
      } else if (cv == cu) {
        // Each undirected intra edge appears twice (v->u and u->v); fold
        // both appearances into one self-loop of weight w.
        accum[cv][cv] += w / 2.0;
      } else {
        accum[cv][cu] += w;  // appears once from each side, as desired
      }
    }
  }
  for (std::uint32_t c = 0; c < community_count; ++c) {
    out.adjacency[c].assign(accum[c].begin(), accum[c].end());
    std::sort(out.adjacency[c].begin(), out.adjacency[c].end());
  }
  return out;
}

}  // namespace

double Modularity(const Graph& graph,
                  const std::vector<std::uint32_t>& community) {
  SIOT_CHECK(community.size() == graph.node_count());
  const double m = static_cast<double>(graph.edge_count());
  if (m == 0.0) return 0.0;
  std::size_t community_count = 0;
  for (std::uint32_t c : community) {
    community_count = std::max<std::size_t>(community_count, c + 1);
  }
  std::vector<double> intra(community_count, 0.0);
  std::vector<double> degree(community_count, 0.0);
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    degree[community[v]] += static_cast<double>(graph.Degree(v));
    for (NodeId u : graph.Neighbors(v)) {
      if (v < u && community[v] == community[u]) {
        intra[community[v]] += 1.0;
      }
    }
  }
  double q = 0.0;
  for (std::size_t c = 0; c < community_count; ++c) {
    const double dc = degree[c] / (2.0 * m);
    q += intra[c] / m - dc * dc;
  }
  return q;
}

std::size_t CountCommunities(const std::vector<std::uint32_t>& community) {
  std::vector<std::uint32_t> ids(community);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids.size();
}

std::vector<std::uint32_t> CompactCommunityIds(
    const std::vector<std::uint32_t>& community) {
  std::unordered_map<std::uint32_t, std::uint32_t> remap;
  std::vector<std::uint32_t> out(community.size());
  for (std::size_t i = 0; i < community.size(); ++i) {
    auto [it, inserted] = remap.emplace(
        community[i], static_cast<std::uint32_t>(remap.size()));
    out[i] = it->second;
  }
  return out;
}

CommunityResult Louvain(const Graph& graph, const LouvainParams& params) {
  CommunityResult result;
  result.community.resize(graph.node_count());
  std::iota(result.community.begin(), result.community.end(), 0);
  if (graph.node_count() == 0 || graph.edge_count() == 0) {
    result.community_count = graph.node_count();
    result.modularity = 0.0;
    return result;
  }

  Rng rng(params.seed);
  WeightedGraph wg = FromGraph(graph);
  // node_to_top[v]: community of original node v in the current hierarchy.
  std::vector<std::uint32_t> node_to_top(graph.node_count());
  std::iota(node_to_top.begin(), node_to_top.end(), 0);

  for (std::size_t level = 0; level < params.max_levels; ++level) {
    std::vector<std::uint32_t> local;
    const bool improved = LocalMove(wg, params, rng, &local);
    local = CompactCommunityIds(local);
    const std::size_t count =
        local.empty() ? 0 : 1 + *std::max_element(local.begin(), local.end());
    // Project the level assignment down to original nodes.
    for (std::uint32_t& top : node_to_top) top = local[top];
    if (!improved || count == wg.size()) break;
    wg = Aggregate(wg, local, count);
  }

  result.community = CompactCommunityIds(node_to_top);
  result.community_count = CountCommunities(result.community);
  result.modularity = Modularity(graph, result.community);
  return result;
}

}  // namespace siot::graph
