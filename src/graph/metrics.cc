// Copyright 2026 The siot-trust Authors.

#include "graph/metrics.h"

#include <algorithm>
#include <deque>

#include "common/macros.h"

namespace siot::graph {

std::vector<std::uint32_t> BfsDistances(const Graph& graph, NodeId source) {
  SIOT_CHECK(source < graph.node_count());
  std::vector<std::uint32_t> dist(graph.node_count(), kUnreachable);
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    const std::uint32_t dv = dist[v];
    for (NodeId u : graph.Neighbors(v)) {
      if (dist[u] == kUnreachable) {
        dist[u] = dv + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

std::uint32_t ShortestPathLength(const Graph& graph, NodeId from,
                                 NodeId to) {
  SIOT_CHECK(from < graph.node_count() && to < graph.node_count());
  if (from == to) return 0;
  // Early-exit BFS.
  std::vector<std::uint32_t> dist(graph.node_count(), kUnreachable);
  std::deque<NodeId> queue;
  dist[from] = 0;
  queue.push_back(from);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (NodeId u : graph.Neighbors(v)) {
      if (dist[u] == kUnreachable) {
        dist[u] = dist[v] + 1;
        if (u == to) return dist[u];
        queue.push_back(u);
      }
    }
  }
  return kUnreachable;
}

std::vector<NodeId> ShortestPath(const Graph& graph, NodeId from,
                                 NodeId to) {
  SIOT_CHECK(from < graph.node_count() && to < graph.node_count());
  std::vector<NodeId> parent(graph.node_count(), kUnreachable);
  std::vector<bool> seen(graph.node_count(), false);
  std::deque<NodeId> queue;
  seen[from] = true;
  queue.push_back(from);
  bool found = (from == to);
  while (!queue.empty() && !found) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (NodeId u : graph.Neighbors(v)) {
      if (!seen[u]) {
        seen[u] = true;
        parent[u] = v;
        if (u == to) {
          found = true;
          break;
        }
        queue.push_back(u);
      }
    }
  }
  if (!found) return {};
  std::vector<NodeId> path;
  for (NodeId v = to;; v = parent[v]) {
    path.push_back(v);
    if (v == from) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<std::uint32_t> ConnectedComponents(const Graph& graph) {
  std::vector<std::uint32_t> component(graph.node_count(), kUnreachable);
  std::uint32_t next = 0;
  std::deque<NodeId> queue;
  for (NodeId start = 0; start < graph.node_count(); ++start) {
    if (component[start] != kUnreachable) continue;
    component[start] = next;
    queue.push_back(start);
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      for (NodeId u : graph.Neighbors(v)) {
        if (component[u] == kUnreachable) {
          component[u] = next;
          queue.push_back(u);
        }
      }
    }
    ++next;
  }
  return component;
}

std::vector<NodeId> LargestComponent(const Graph& graph) {
  const auto component = ConnectedComponents(graph);
  std::vector<std::size_t> sizes;
  for (std::uint32_t c : component) {
    if (c >= sizes.size()) sizes.resize(c + 1, 0);
    ++sizes[c];
  }
  if (sizes.empty()) return {};
  const std::size_t best = static_cast<std::size_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
  std::vector<NodeId> nodes;
  nodes.reserve(sizes[best]);
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    if (component[v] == best) nodes.push_back(v);
  }
  return nodes;
}

Graph InducedSubgraph(const Graph& graph, const std::vector<NodeId>& nodes,
                      std::vector<std::uint32_t>* old_to_new) {
  std::vector<std::uint32_t> remap(graph.node_count(), kUnreachable);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    SIOT_CHECK(nodes[i] < graph.node_count());
    remap[nodes[i]] = static_cast<std::uint32_t>(i);
  }
  GraphBuilder builder(nodes.size());
  for (NodeId v : nodes) {
    for (NodeId u : graph.Neighbors(v)) {
      if (remap[u] != kUnreachable && v < u) {
        builder.AddEdge(remap[v], remap[u]);
      }
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(remap);
  return builder.Build();
}

double LocalClusteringCoefficient(const Graph& graph, NodeId node) {
  const auto nbrs = graph.Neighbors(node);
  const std::size_t k = nbrs.size();
  if (k < 2) return 0.0;
  std::size_t links = 0;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      if (graph.HasEdge(nbrs[i], nbrs[j])) ++links;
    }
  }
  return 2.0 * static_cast<double>(links) /
         (static_cast<double>(k) * static_cast<double>(k - 1));
}

double AverageClusteringCoefficient(const Graph& graph) {
  if (graph.node_count() == 0) return 0.0;
  double total = 0.0;
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    total += LocalClusteringCoefficient(graph, v);
  }
  return total / static_cast<double>(graph.node_count());
}

std::size_t TriangleCount(const Graph& graph) {
  // Each triangle {a<b<c} is counted once by scanning ordered wedges.
  std::size_t triangles = 0;
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    const auto nbrs = graph.Neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] <= v) continue;
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        if (graph.HasEdge(nbrs[i], nbrs[j])) ++triangles;
      }
    }
  }
  return triangles;
}

PathStats ComputePathStats(const Graph& graph) {
  PathStats stats;
  const std::size_t n = graph.node_count();
  if (n == 0) return stats;
  std::size_t connected_pairs = 0;
  double total_length = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    const auto dist = BfsDistances(graph, v);
    for (NodeId u = 0; u < n; ++u) {
      if (u == v || dist[u] == kUnreachable) continue;
      ++connected_pairs;
      total_length += dist[u];
      stats.diameter = std::max(stats.diameter, dist[u]);
    }
  }
  if (connected_pairs > 0) {
    stats.average_path_length =
        total_length / static_cast<double>(connected_pairs);
  }
  const double ordered_pairs = static_cast<double>(n) *
                               static_cast<double>(n - 1);
  stats.connected_pair_fraction =
      ordered_pairs == 0.0
          ? 0.0
          : static_cast<double>(connected_pairs) / ordered_pairs;
  return stats;
}

ConnectivitySummary Summarize(const Graph& graph) {
  ConnectivitySummary s;
  s.node_count = graph.node_count();
  s.edge_count = graph.edge_count();
  s.average_degree = graph.AverageDegree();
  const PathStats paths = ComputePathStats(graph);
  s.diameter = paths.diameter;
  s.average_path_length = paths.average_path_length;
  s.average_clustering = AverageClusteringCoefficient(graph);
  if (graph.node_count() > 0) {
    s.max_degree = graph.Degree(0);
    s.min_degree = graph.Degree(0);
    for (NodeId v = 0; v < graph.node_count(); ++v) {
      s.max_degree = std::max(s.max_degree, graph.Degree(v));
      s.min_degree = std::min(s.min_degree, graph.Degree(v));
    }
  }
  return s;
}

}  // namespace siot::graph
