// Copyright 2026 The siot-trust Authors.

#include "graph/graph.h"

#include <algorithm>

#include "common/macros.h"

namespace siot::graph {

Graph::Graph(std::size_t node_count) : offsets_(node_count + 1, 0) {}

std::span<const NodeId> Graph::Neighbors(NodeId node) const {
  SIOT_CHECK(node < node_count());
  return {neighbors_.data() + offsets_[node],
          neighbors_.data() + offsets_[node + 1]};
}

std::size_t Graph::Degree(NodeId node) const {
  SIOT_CHECK(node < node_count());
  return offsets_[node + 1] - offsets_[node];
}

bool Graph::HasEdge(NodeId a, NodeId b) const {
  if (a >= node_count() || b >= node_count() || a == b) return false;
  // Search from the lower-degree endpoint.
  if (Degree(a) > Degree(b)) std::swap(a, b);
  const auto nbrs = Neighbors(a);
  return std::binary_search(nbrs.begin(), nbrs.end(), b);
}

std::vector<std::pair<NodeId, NodeId>> Graph::Edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(edge_count());
  for (NodeId v = 0; v < node_count(); ++v) {
    for (NodeId u : Neighbors(v)) {
      if (v < u) out.emplace_back(v, u);
    }
  }
  return out;
}

double Graph::AverageDegree() const {
  if (node_count() == 0) return 0.0;
  return 2.0 * static_cast<double>(edge_count()) /
         static_cast<double>(node_count());
}

GraphBuilder::GraphBuilder(std::size_t node_count)
    : node_count_(node_count) {}

std::uint64_t GraphBuilder::Key(NodeId a, NodeId b) {
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

bool GraphBuilder::AddEdge(NodeId a, NodeId b) {
  SIOT_CHECK_MSG(a < node_count_ && b < node_count_,
                 "edge (%u,%u) out of range for %zu nodes", a, b,
                 node_count_);
  if (a == b) return false;
  return edges_.insert(Key(a, b)).second;
}

bool GraphBuilder::RemoveEdge(NodeId a, NodeId b) {
  return edges_.erase(Key(a, b)) > 0;
}

bool GraphBuilder::HasEdge(NodeId a, NodeId b) const {
  if (a == b) return false;
  return edges_.contains(Key(a, b));
}

std::vector<std::pair<NodeId, NodeId>> GraphBuilder::Edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(edges_.size());
  for (std::uint64_t key : edges_) {
    out.emplace_back(static_cast<NodeId>(key >> 32),
                     static_cast<NodeId>(key & 0xFFFFFFFFull));
  }
  return out;
}

Graph GraphBuilder::Build() const {
  Graph g(node_count_);
  std::vector<std::size_t> degree(node_count_, 0);
  for (std::uint64_t key : edges_) {
    ++degree[static_cast<NodeId>(key >> 32)];
    ++degree[static_cast<NodeId>(key & 0xFFFFFFFFull)];
  }
  g.offsets_.assign(node_count_ + 1, 0);
  for (std::size_t v = 0; v < node_count_; ++v) {
    g.offsets_[v + 1] = g.offsets_[v] + degree[v];
  }
  g.neighbors_.assign(g.offsets_.back(), 0);
  std::vector<std::size_t> cursor(g.offsets_.begin(),
                                  g.offsets_.end() - 1);
  for (std::uint64_t key : edges_) {
    const auto lo = static_cast<NodeId>(key >> 32);
    const auto hi = static_cast<NodeId>(key & 0xFFFFFFFFull);
    g.neighbors_[cursor[lo]++] = hi;
    g.neighbors_[cursor[hi]++] = lo;
  }
  for (NodeId v = 0; v < node_count_; ++v) {
    std::sort(g.neighbors_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]),
              g.neighbors_.begin() +
                  static_cast<std::ptrdiff_t>(g.offsets_[v + 1]));
  }
  return g;
}

}  // namespace siot::graph
