// Copyright 2026 The siot-trust Authors.
// Undirected social graph used as the connectivity substrate of the social
// IoT. Immutable after construction (built via GraphBuilder); adjacency is
// stored CSR-style with sorted neighbor lists, so neighbor iteration is a
// contiguous scan and edge queries are binary searches.

#ifndef SIOT_GRAPH_GRAPH_H_
#define SIOT_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/status.h"

namespace siot::graph {

/// Dense node identifier in [0, node_count).
using NodeId = std::uint32_t;

/// Undirected simple graph (no self-loops, no parallel edges).
class Graph {
 public:
  /// Empty graph with `node_count` isolated nodes.
  explicit Graph(std::size_t node_count = 0);

  std::size_t node_count() const { return offsets_.size() - 1; }
  std::size_t edge_count() const { return neighbors_.size() / 2; }

  /// Sorted neighbors of `node`.
  std::span<const NodeId> Neighbors(NodeId node) const;

  std::size_t Degree(NodeId node) const;

  /// True if the undirected edge {a, b} exists.
  bool HasEdge(NodeId a, NodeId b) const;

  /// All edges with a < b, in lexicographic order.
  std::vector<std::pair<NodeId, NodeId>> Edges() const;

  /// 2 * edge_count / node_count; 0 for the empty graph.
  double AverageDegree() const;

  friend class GraphBuilder;

 private:
  // offsets_[v]..offsets_[v+1] indexes neighbors_ (CSR).
  std::vector<std::size_t> offsets_;
  std::vector<NodeId> neighbors_;
};

/// Accumulates edges (deduplicating and dropping self-loops) and builds the
/// immutable Graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t node_count);

  std::size_t node_count() const { return node_count_; }
  /// Number of distinct undirected edges added so far.
  std::size_t edge_count() const { return edges_.size(); }

  /// Adds undirected edge {a, b}. Self-loops and duplicates are ignored.
  /// Returns true if the edge was newly added.
  bool AddEdge(NodeId a, NodeId b);

  /// Removes the edge if present; returns true if removed.
  bool RemoveEdge(NodeId a, NodeId b);

  bool HasEdge(NodeId a, NodeId b) const;

  /// Current edges, a < b, unordered.
  std::vector<std::pair<NodeId, NodeId>> Edges() const;

  /// Builds the CSR graph; the builder may be reused afterwards.
  Graph Build() const;

 private:
  static std::uint64_t Key(NodeId a, NodeId b);

  std::size_t node_count_;
  std::unordered_set<std::uint64_t> edges_;  // packed (min << 32 | max)
};

}  // namespace siot::graph

#endif  // SIOT_GRAPH_GRAPH_H_
