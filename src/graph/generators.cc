// Copyright 2026 The siot-trust Authors.

#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/macros.h"
#include "graph/metrics.h"

namespace siot::graph {

Graph ErdosRenyiGnp(std::size_t n, double p, Rng& rng) {
  SIOT_CHECK(p >= 0.0 && p <= 1.0);
  GraphBuilder builder(n);
  if (p <= 0.0 || n < 2) return builder.Build();
  if (p >= 1.0) {
    for (NodeId a = 0; a < n; ++a) {
      for (NodeId b = a + 1; b < n; ++b) builder.AddEdge(a, b);
    }
    return builder.Build();
  }
  // Geometric skipping (Batagelj–Brandes): O(n + m) instead of O(n^2).
  const double log_q = std::log(1.0 - p);
  std::int64_t v = 1;
  std::int64_t w = -1;
  const auto nn = static_cast<std::int64_t>(n);
  while (v < nn) {
    double r = rng.NextDouble();
    while (r <= 0.0) r = rng.NextDouble();
    w += 1 + static_cast<std::int64_t>(std::floor(std::log(r) / log_q));
    while (w >= v && v < nn) {
      w -= v;
      ++v;
    }
    if (v < nn) {
      builder.AddEdge(static_cast<NodeId>(v), static_cast<NodeId>(w));
    }
  }
  return builder.Build();
}

Graph ErdosRenyiGnm(std::size_t n, std::size_t m, Rng& rng) {
  const std::size_t max_edges = n < 2 ? 0 : n * (n - 1) / 2;
  SIOT_CHECK_MSG(m <= max_edges, "G(n,m): m=%zu exceeds max %zu", m,
                 max_edges);
  GraphBuilder builder(n);
  while (builder.edge_count() < m) {
    const auto a = static_cast<NodeId>(rng.NextBounded(n));
    const auto b = static_cast<NodeId>(rng.NextBounded(n));
    builder.AddEdge(a, b);
  }
  return builder.Build();
}

Graph WattsStrogatz(std::size_t n, std::size_t k, double beta, Rng& rng) {
  SIOT_CHECK_MSG(k % 2 == 0, "Watts–Strogatz requires even k, got %zu", k);
  SIOT_CHECK(k < n);
  SIOT_CHECK(beta >= 0.0 && beta <= 1.0);
  GraphBuilder builder(n);
  // Ring lattice.
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t j = 1; j <= k / 2; ++j) {
      builder.AddEdge(v, static_cast<NodeId>((v + j) % n));
    }
  }
  // Rewire each lattice edge (v, v+j) with probability beta.
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t j = 1; j <= k / 2; ++j) {
      if (!rng.Bernoulli(beta)) continue;
      const auto old_target = static_cast<NodeId>((v + j) % n);
      if (!builder.HasEdge(v, old_target)) continue;  // already rewired away
      // Choose a new endpoint that is not v and not already a neighbor.
      for (int attempt = 0; attempt < 64; ++attempt) {
        const auto t = static_cast<NodeId>(rng.NextBounded(n));
        if (t == v || builder.HasEdge(v, t)) continue;
        builder.RemoveEdge(v, old_target);
        builder.AddEdge(v, t);
        break;
      }
    }
  }
  return builder.Build();
}

Graph BarabasiAlbert(std::size_t n, std::size_t m, Rng& rng) {
  SIOT_CHECK(m >= 1);
  SIOT_CHECK(n > m);
  GraphBuilder builder(n);
  // Repeated-endpoint list: sampling an element uniformly is sampling a
  // node proportional to degree.
  std::vector<NodeId> endpoints;
  // Seed: star over the first m+1 nodes.
  for (NodeId v = 1; v <= m; ++v) {
    builder.AddEdge(0, v);
    endpoints.push_back(0);
    endpoints.push_back(v);
  }
  for (NodeId v = static_cast<NodeId>(m + 1); v < n; ++v) {
    std::size_t added = 0;
    std::size_t guard = 0;
    while (added < m && guard++ < 1000) {
      const NodeId target =
          endpoints[rng.NextBounded(endpoints.size())];
      if (target == v || builder.HasEdge(v, target)) continue;
      builder.AddEdge(v, target);
      endpoints.push_back(v);
      endpoints.push_back(target);
      ++added;
    }
  }
  return builder.Build();
}

namespace {

/// Draws community sizes summing to `total` with a floor of `min_size`
/// nodes per community. alpha > 0: deterministic power-law ranks (heavy
/// skew like the SNAP ego circles). alpha == 0: lognormal softmax with
/// spread 1/evenness.
std::vector<std::size_t> DrawCommunitySizes(std::size_t total,
                                            std::size_t communities,
                                            double alpha, double evenness,
                                            std::size_t min_size, Rng& rng) {
  SIOT_CHECK(communities >= 1);
  SIOT_CHECK(min_size >= 2);
  SIOT_CHECK(total >= communities * min_size);
  std::vector<double> weights(communities);
  if (alpha > 0.0) {
    for (std::size_t i = 0; i < communities; ++i) {
      weights[i] = std::pow(static_cast<double>(i + 1), -alpha);
    }
  } else {
    const double sigma = 1.0 / std::max(0.05, evenness);
    for (double& w : weights) w = std::exp(rng.Gaussian(0.0, sigma));
  }
  const double wsum = std::accumulate(weights.begin(), weights.end(), 0.0);
  std::vector<std::size_t> sizes(communities, min_size);
  std::size_t assigned = communities * min_size;
  // Proportional allocation of the remainder.
  std::vector<double> fractional(communities);
  const auto remainder = static_cast<double>(total - assigned);
  for (std::size_t c = 0; c < communities; ++c) {
    const double share = remainder * weights[c] / wsum;
    const auto whole = static_cast<std::size_t>(share);
    sizes[c] += whole;
    assigned += whole;
    fractional[c] = share - static_cast<double>(whole);
  }
  // Largest remainder for the leftover nodes.
  std::vector<std::size_t> order(communities);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return fractional[a] > fractional[b];
  });
  for (std::size_t i = 0; assigned < total; ++i) {
    ++sizes[order[i % communities]];
    ++assigned;
  }
  return sizes;
}

void BridgeComponents(GraphBuilder& builder, Rng& rng) {
  Graph g = builder.Build();
  auto component = ConnectedComponents(g);
  std::uint32_t component_count = 0;
  for (std::uint32_t c : component) {
    component_count = std::max(component_count, c + 1);
  }
  while (component_count > 1) {
    // Pick one random node in component 0 and one in another component.
    std::vector<NodeId> in0, rest;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      (component[v] == 0 ? in0 : rest).push_back(v);
    }
    const NodeId a = in0[rng.NextBounded(in0.size())];
    const NodeId b = rest[rng.NextBounded(rest.size())];
    builder.AddEdge(a, b);
    g = builder.Build();
    component = ConnectedComponents(g);
    component_count = 0;
    for (std::uint32_t c : component) {
      component_count = std::max(component_count, c + 1);
    }
  }
}

}  // namespace

void AdjustEdgeCount(GraphBuilder& builder, std::size_t target, Rng& rng) {
  const std::size_t n = builder.node_count();
  const std::size_t max_edges = n < 2 ? 0 : n * (n - 1) / 2;
  SIOT_CHECK_MSG(target <= max_edges, "target %zu exceeds max %zu", target,
                 max_edges);
  // Remove uniformly random existing edges while too many.
  while (builder.edge_count() > target) {
    const auto edges = builder.Edges();
    const std::size_t excess = builder.edge_count() - target;
    const auto victims =
        rng.SampleWithoutReplacement(edges.size(), excess);
    for (std::size_t i : victims) {
      builder.RemoveEdge(edges[i].first, edges[i].second);
    }
  }
  // Add uniformly random missing edges while too few.
  while (builder.edge_count() < target) {
    const auto a = static_cast<NodeId>(rng.NextBounded(n));
    const auto b = static_cast<NodeId>(rng.NextBounded(n));
    builder.AddEdge(a, b);
  }
}

void AdjustEdgeCountWithCommunities(
    GraphBuilder& builder, std::size_t target,
    const std::vector<std::uint32_t>& community, Rng& rng) {
  const std::size_t n = builder.node_count();
  SIOT_CHECK(community.size() == n);
  // Removals: uniform over existing edges (same as AdjustEdgeCount).
  while (builder.edge_count() > target) {
    const auto edges = builder.Edges();
    const std::size_t excess = builder.edge_count() - target;
    const auto victims = rng.SampleWithoutReplacement(edges.size(), excess);
    for (std::size_t i : victims) {
      builder.RemoveEdge(edges[i].first, edges[i].second);
    }
  }
  if (builder.edge_count() >= target) return;
  // Additions: draw both endpoints from the same community so the planted
  // structure (clustering, modularity) survives hitting the edge target.
  std::size_t community_count = 0;
  for (std::uint32_t c : community) {
    community_count = std::max<std::size_t>(community_count, c + 1);
  }
  std::vector<std::vector<NodeId>> members(community_count);
  for (NodeId v = 0; v < n; ++v) members[community[v]].push_back(v);
  std::size_t stale = 0;
  while (builder.edge_count() < target) {
    // After many failed intra attempts the blocks are saturated; fall back
    // to uniform pairs so the loop always terminates.
    if (stale > 64 * n) {
      AdjustEdgeCount(builder, target, rng);
      return;
    }
    const auto& block = members[rng.NextBounded(community_count)];
    if (block.size() < 2) {
      ++stale;
      continue;
    }
    const NodeId a = block[rng.NextBounded(block.size())];
    const NodeId b = block[rng.NextBounded(block.size())];
    if (builder.AddEdge(a, b)) {
      stale = 0;
    } else {
      ++stale;
    }
  }
}

StatusOr<CommunityGraph> GenerateCommunityGraph(
    const CommunityGraphParams& params, Rng& rng) {
  if (params.node_count < 2) {
    return Status::InvalidArgument("community graph needs >= 2 nodes");
  }
  if (params.community_count < 1 ||
      params.community_count * 2 > params.node_count) {
    return Status::InvalidArgument(
        "community_count must be in [1, node_count/2]");
  }
  if (params.p_intra < 0 || params.p_intra > 1 || params.p_inter < 0 ||
      params.p_inter > 1) {
    return Status::InvalidArgument("edge probabilities must be in [0,1]");
  }

  if (params.min_community_size < 2 ||
      params.min_community_size * params.community_count >
          params.node_count) {
    return Status::InvalidArgument(
        "min_community_size must be >= 2 and fit node_count");
  }
  const std::vector<std::size_t> sizes = DrawCommunitySizes(
      params.node_count, params.community_count, params.size_alpha,
      params.size_evenness, params.min_community_size, rng);

  CommunityGraph out{Graph(params.node_count),
                     std::vector<std::uint32_t>(params.node_count, 0)};
  // Assign contiguous node ranges to communities, then shuffle identities so
  // node id carries no community information.
  std::vector<NodeId> identity(params.node_count);
  std::iota(identity.begin(), identity.end(), 0);
  rng.Shuffle(identity);
  std::vector<std::vector<NodeId>> members(params.community_count);
  {
    std::size_t cursor = 0;
    for (std::size_t c = 0; c < params.community_count; ++c) {
      for (std::size_t i = 0; i < sizes[c]; ++i) {
        const NodeId v = identity[cursor++];
        out.community[v] = static_cast<std::uint32_t>(c);
        members[c].push_back(v);
      }
    }
  }

  GraphBuilder builder(params.node_count);
  // Intra-community: dense ER blocks (clustering ~ p_intra); small circles
  // become cliques when clique_size_threshold is set.
  for (const auto& block : members) {
    const bool clique = params.clique_size_threshold != 0 &&
                        block.size() <= params.clique_size_threshold;
    for (std::size_t i = 0; i < block.size(); ++i) {
      for (std::size_t j = i + 1; j < block.size(); ++j) {
        if (clique || rng.Bernoulli(params.p_intra)) {
          builder.AddEdge(block[i], block[j]);
        }
      }
    }
  }
  // Structured inter-community wiring. Order communities by descending
  // size; the tail_communities smallest hang off the ring as a chain, the
  // rest form a ring with ring_bridges edges per adjacent pair.
  std::vector<std::size_t> by_size(params.community_count);
  std::iota(by_size.begin(), by_size.end(), 0);
  std::sort(by_size.begin(), by_size.end(),
            [&sizes](std::size_t a, std::size_t b) {
              return sizes[a] > sizes[b];
            });
  const std::size_t tails =
      std::min(params.tail_communities,
               params.community_count > 2 ? params.community_count - 2 : 0);
  const std::size_t non_tail = params.community_count - tails;
  const std::size_t ring_size =
      params.ring_core == 0 ? non_tail
                            : std::min(std::max<std::size_t>(params.ring_core,
                                                             2),
                                       non_tail);

  auto add_bridges = [&](std::size_t c1, std::size_t c2, std::size_t count) {
    for (std::size_t e = 0; e < count; ++e) {
      const NodeId a = members[c1][rng.NextBounded(members[c1].size())];
      const NodeId b = members[c2][rng.NextBounded(members[c2].size())];
      builder.AddEdge(a, b);
    }
  };

  // Ring over the ring_size largest communities.
  if (ring_size >= 2) {
    for (std::size_t i = 0; i < ring_size; ++i) {
      const std::size_t c1 = by_size[i];
      const std::size_t c2 = by_size[(i + 1) % ring_size];
      if (c1 == c2) continue;
      add_bridges(c1, c2, std::max<std::size_t>(params.ring_bridges, 1));
    }
  }
  // Spokes: each non-core, non-tail community hangs off one of the top-3
  // communities (high-degree anchors resist Louvain merging).
  const std::size_t anchor_count = std::min<std::size_t>(3, ring_size);
  for (std::size_t i = ring_size; i < non_tail; ++i) {
    const std::size_t anchor = by_size[rng.NextBounded(anchor_count)];
    add_bridges(anchor, by_size[i],
                std::max<std::size_t>(params.spoke_bridges, 1));
  }
  // Tail chain: ring community -> smallest, second smallest, ... Each link
  // is a single edge, so eccentricities grow by the chain length.
  if (tails > 0) {
    std::size_t prev = by_size[rng.NextBounded(ring_size)];
    for (std::size_t t = 0; t < tails; ++t) {
      const std::size_t c = by_size[params.community_count - 1 - t];
      add_bridges(prev, c, 1);
      prev = c;
    }
  }
  // Random community-pair shortcuts (single edge each).
  for (std::size_t s = 0; s < params.shortcut_bridges; ++s) {
    const std::size_t c1 = rng.NextBounded(params.community_count);
    const std::size_t c2 = rng.NextBounded(params.community_count);
    if (c1 == c2) continue;
    add_bridges(c1, c2, 1);
  }
  // Optional uniform background wiring.
  if (params.p_inter > 0.0) {
    for (std::size_t c1 = 0; c1 < members.size(); ++c1) {
      for (std::size_t c2 = c1 + 1; c2 < members.size(); ++c2) {
        for (NodeId a : members[c1]) {
          for (NodeId b : members[c2]) {
            if (rng.Bernoulli(params.p_inter)) builder.AddEdge(a, b);
          }
        }
      }
    }
  }
  // Hubs: ego-like nodes that befriend many circles.
  const auto hub_count = static_cast<std::size_t>(
      std::ceil(params.hub_fraction * static_cast<double>(params.node_count)));
  for (std::size_t h = 0; h < hub_count; ++h) {
    const auto hub = static_cast<NodeId>(rng.NextBounded(params.node_count));
    for (std::size_t e = 0; e < params.hub_extra_edges; ++e) {
      const auto t = static_cast<NodeId>(rng.NextBounded(params.node_count));
      builder.AddEdge(hub, t);
    }
  }

  if (params.force_connected) BridgeComponents(builder, rng);
  if (params.target_edge_count != 0) {
    // Bridging after trimming can overshoot the target by the number of
    // bridges added, so alternate until both constraints hold (converges in
    // one or two rounds in practice — disconnection after a random trim is
    // rare at these densities).
    for (int round = 0; round < 16; ++round) {
      AdjustEdgeCountWithCommunities(builder, params.target_edge_count,
                                     out.community, rng);
      if (!params.force_connected) break;
      const std::size_t before = builder.edge_count();
      BridgeComponents(builder, rng);
      if (builder.edge_count() == before) break;
    }
  }

  out.graph = builder.Build();
  return out;
}

}  // namespace siot::graph
