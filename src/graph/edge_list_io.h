// Copyright 2026 The siot-trust Authors.
// Whitespace-separated edge-list serialization — the format used by the
// SNAP ego-network datasets the paper draws its connectivity from. Lets
// users load real datasets in place of the bundled synthetic ones.

#ifndef SIOT_GRAPH_EDGE_LIST_IO_H_
#define SIOT_GRAPH_EDGE_LIST_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "graph/graph.h"

namespace siot::graph {

/// Parses "u v" lines ('#' comments allowed). Node ids may be arbitrary
/// non-negative integers; they are compacted to dense [0, n) preserving
/// first-appearance order.
StatusOr<Graph> ReadEdgeListString(std::string_view text);

/// ReadEdgeListString over a file's contents.
StatusOr<Graph> ReadEdgeListFile(const std::string& path);

/// Writes "u v" lines (u < v), one per edge, with a header comment.
Status WriteEdgeListFile(const Graph& graph, const std::string& path);

/// Serializes to the same format as WriteEdgeListFile.
std::string WriteEdgeListString(const Graph& graph);

}  // namespace siot::graph

#endif  // SIOT_GRAPH_EDGE_LIST_IO_H_
