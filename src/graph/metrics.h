// Copyright 2026 The siot-trust Authors.
// Connectivity metrics reported in the paper's Table 1: degree statistics,
// diameter, average shortest-path length, and clustering coefficients.
// Shortest paths use plain BFS (the graphs are unweighted).

#ifndef SIOT_GRAPH_METRICS_H_
#define SIOT_GRAPH_METRICS_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.h"

namespace siot::graph {

/// Distance marker for unreachable nodes.
inline constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

/// BFS distances from `source` (kUnreachable where disconnected).
std::vector<std::uint32_t> BfsDistances(const Graph& graph, NodeId source);

/// Shortest-path hop count between two nodes, or kUnreachable.
std::uint32_t ShortestPathLength(const Graph& graph, NodeId from, NodeId to);

/// One shortest path (inclusive of endpoints), empty if unreachable.
std::vector<NodeId> ShortestPath(const Graph& graph, NodeId from, NodeId to);

/// Connected components; returns component id per node (ids dense from 0).
std::vector<std::uint32_t> ConnectedComponents(const Graph& graph);

/// Node ids of the largest connected component.
std::vector<NodeId> LargestComponent(const Graph& graph);

/// Induced subgraph on `nodes`; `old_to_new` (optional) receives the node
/// remapping (kUnreachable for nodes outside the subgraph).
Graph InducedSubgraph(const Graph& graph, const std::vector<NodeId>& nodes,
                      std::vector<std::uint32_t>* old_to_new = nullptr);

/// Local clustering coefficient of one node (0 for degree < 2).
double LocalClusteringCoefficient(const Graph& graph, NodeId node);

/// Mean of local clustering coefficients over all nodes (Watts–Strogatz
/// definition, as used by Gephi / the paper's Table 1).
double AverageClusteringCoefficient(const Graph& graph);

/// Exact number of triangles in the graph.
std::size_t TriangleCount(const Graph& graph);

/// Diameter + average path length computed together (they share the BFS
/// sweep). Computed over connected pairs only; `connected_pair_fraction`
/// reports how many ordered pairs were connected.
struct PathStats {
  std::uint32_t diameter = 0;
  double average_path_length = 0.0;
  double connected_pair_fraction = 0.0;
};
PathStats ComputePathStats(const Graph& graph);

/// The full Table-1 row for a graph.
struct ConnectivitySummary {
  std::size_t node_count = 0;
  std::size_t edge_count = 0;
  double average_degree = 0.0;
  std::uint32_t diameter = 0;
  double average_path_length = 0.0;
  double average_clustering = 0.0;
  std::size_t max_degree = 0;
  std::size_t min_degree = 0;
};
ConnectivitySummary Summarize(const Graph& graph);

}  // namespace siot::graph

#endif  // SIOT_GRAPH_METRICS_H_
