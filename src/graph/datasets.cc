// Copyright 2026 The siot-trust Authors.

#include "graph/datasets.h"

#include "common/macros.h"

namespace siot::graph {

std::string_view SocialNetworkName(SocialNetwork network) {
  switch (network) {
    case SocialNetwork::kFacebook:
      return "Facebook";
    case SocialNetwork::kGooglePlus:
      return "Google+";
    case SocialNetwork::kTwitter:
      return "Twitter";
  }
  return "?";
}

Table1Row PaperTable1(SocialNetwork network) {
  switch (network) {
    case SocialNetwork::kFacebook:
      return {347, 5038, 29.04, 11, 3.75, 0.49, 0.46, 29};
    case SocialNetwork::kGooglePlus:
      return {358, 4178, 23.34, 12, 3.90, 0.39, 0.45, 22};
    case SocialNetwork::kTwitter:
      return {244, 2478, 20.31, 8, 2.96, 0.27, 0.38, 16};
  }
  SIOT_CHECK_MSG(false, "unknown network");
  return {};
}

CommunityGraphParams DatasetParams(SocialNetwork network) {
  // Calibrated against PaperTable1 (see bench_table1 / EXPERIMENTS.md for
  // the measured statistics of these exact parameter sets + seeds).
  CommunityGraphParams p;
  switch (network) {
    case SocialNetwork::kFacebook:
      // Targets: 347n/5038e, ACC 0.49, mod 0.46, diam 11, APL 3.75.
      // Measured (seed 0xFACEB001): ACC 0.52, mod 0.41, diam 9, APL 3.55.
      p.node_count = 347;
      p.community_count = 29;
      p.size_alpha = 1.40;
      p.p_intra = 0.80;
      p.p_inter = 0.002;
      p.ring_bridges = 2;
      p.ring_core = 8;
      p.spoke_bridges = 1;
      p.shortcut_bridges = 5;
      p.min_community_size = 3;
      p.clique_size_threshold = 3;
      p.tail_communities = 3;
      p.target_edge_count = 5038;
      break;
    case SocialNetwork::kGooglePlus:
      // Targets: 358n/4178e, ACC 0.39, mod 0.45, diam 12, APL 3.90.
      // Measured (seed 0x600613): ACC 0.39, mod 0.44, diam 11, APL 3.89.
      p.node_count = 358;
      p.community_count = 22;
      p.size_alpha = 1.30;
      p.p_intra = 0.70;
      p.p_inter = 0.002;
      p.ring_bridges = 2;
      p.ring_core = 8;
      p.spoke_bridges = 1;
      p.shortcut_bridges = 10;
      p.min_community_size = 3;
      p.clique_size_threshold = 3;
      p.tail_communities = 3;
      p.target_edge_count = 4178;
      break;
    case SocialNetwork::kTwitter:
      // Targets: 244n/2478e, ACC 0.27, mod 0.38, diam 8, APL 2.96.
      // Measured (seed 0x7811773B): ACC 0.29, mod 0.36, diam 8, APL 3.04.
      p.node_count = 244;
      p.community_count = 16;
      p.size_alpha = 1.50;
      p.p_intra = 0.50;
      p.p_inter = 0.004;
      p.ring_bridges = 2;
      p.ring_core = 8;
      p.spoke_bridges = 1;
      p.shortcut_bridges = 35;
      p.min_community_size = 3;
      p.clique_size_threshold = 3;
      p.tail_communities = 3;
      p.target_edge_count = 2478;
      break;
  }
  p.force_connected = true;
  return p;
}

std::uint64_t DatasetSeed(SocialNetwork network) {
  switch (network) {
    case SocialNetwork::kFacebook:
      return 0xFACEB001ull;
    case SocialNetwork::kGooglePlus:
      return 0x600613ull;
    case SocialNetwork::kTwitter:
      return 0x7811773Bull;
  }
  return 1;
}

std::vector<std::uint64_t> GenerateNodeFeatures(
    std::size_t node_count, const std::vector<std::uint32_t>& community,
    std::size_t feature_count, Rng& rng) {
  SIOT_CHECK_MSG(feature_count >= 1 && feature_count <= 64,
                 "feature_count %zu outside [1,64]", feature_count);
  SIOT_CHECK(community.size() == node_count);
  std::size_t community_count = 0;
  for (std::uint32_t c : community) {
    community_count = std::max<std::size_t>(community_count, c + 1);
  }
  // Community prototypes: ~40% of features on.
  std::vector<std::uint64_t> prototypes(community_count, 0);
  for (auto& proto : prototypes) {
    for (std::size_t f = 0; f < feature_count; ++f) {
      if (rng.Bernoulli(0.4)) proto |= (1ull << f);
    }
    if (proto == 0) proto |= 1ull << rng.NextBounded(feature_count);
  }
  std::vector<std::uint64_t> features(node_count, 0);
  for (std::size_t v = 0; v < node_count; ++v) {
    const std::uint64_t proto = prototypes[community[v]];
    std::uint64_t bits = 0;
    for (std::size_t f = 0; f < feature_count; ++f) {
      const bool in_proto = (proto >> f) & 1ull;
      // Members keep prototype features with p=0.85 and pick up stray
      // features with p=0.08 — heterogeneous but community-correlated.
      const double p = in_proto ? 0.85 : 0.08;
      if (rng.Bernoulli(p)) bits |= (1ull << f);
    }
    if (bits == 0) bits |= 1ull << rng.NextBounded(feature_count);
    features[v] = bits;
  }
  return features;
}

SocialDataset LoadDataset(SocialNetwork network,
                          const DatasetOptions& options) {
  const CommunityGraphParams params = DatasetParams(network);
  const std::uint64_t seed =
      options.seed != 0 ? options.seed : DatasetSeed(network);
  Rng rng(seed);
  auto generated = GenerateCommunityGraph(params, rng);
  SIOT_CHECK_MSG(generated.ok(), "dataset generation failed: %s",
                 generated.status().ToString().c_str());
  SocialDataset dataset{network, std::move(generated->graph),
                        std::move(generated->community),
                        {},
                        options.feature_count};
  Rng feature_rng = rng.Fork(0xFEA7);
  dataset.features = GenerateNodeFeatures(
      dataset.graph.node_count(), dataset.community, options.feature_count,
      feature_rng);
  return dataset;
}

}  // namespace siot::graph
