// Copyright 2026 The siot-trust Authors.
// Bundled stand-ins for the three SNAP ego-network sub-networks the paper
// uses for connectivity (Table 1). The originals (user profiles + circles
// from survey participants / crawls) cannot be redistributed here, so each
// dataset is produced by the planted-community generator with parameters
// calibrated so node/edge counts match Table 1 exactly and the remaining
// connectivity statistics match approximately. Real SNAP edge lists can be
// loaded through graph::ReadEdgeListFile and used everywhere a bundled
// dataset is used.

#ifndef SIOT_GRAPH_DATASETS_H_
#define SIOT_GRAPH_DATASETS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace siot::graph {

/// The three social networks of the paper's evaluation.
enum class SocialNetwork {
  kFacebook,
  kGooglePlus,
  kTwitter,
};

std::string_view SocialNetworkName(SocialNetwork network);

/// All three, in the paper's presentation order.
inline constexpr SocialNetwork kAllNetworks[] = {
    SocialNetwork::kFacebook,
    SocialNetwork::kGooglePlus,
    SocialNetwork::kTwitter,
};

/// The paper's Table 1 values, used as calibration targets and echoed by
/// bench_table1 next to our measured values.
struct Table1Row {
  std::size_t nodes;
  std::size_t edges;
  double average_degree;
  std::uint32_t diameter;
  double average_path_length;
  double average_clustering;
  double modularity;
  std::size_t communities;
};
Table1Row PaperTable1(SocialNetwork network);

/// A bundled social-IoT connectivity dataset.
struct SocialDataset {
  SocialNetwork network;
  Graph graph;
  /// Planted community per node (ground truth of the generator; Louvain is
  /// run independently for Table 1).
  std::vector<std::uint32_t> community;
  /// Binary feature matrix: features[v] is node v's property bitset,
  /// correlated with its community the way ego-net profile features are.
  std::vector<std::uint64_t> features;
  /// Number of meaningful bits in each features[] word.
  std::size_t feature_count = 0;
};

/// Options for dataset instantiation.
struct DatasetOptions {
  /// Seed for the generator; the default is the calibrated seed whose
  /// output's statistics are recorded in EXPERIMENTS.md.
  std::uint64_t seed = 0;  // 0 -> per-network calibrated default
  /// Number of node features to draw (Table 2 uses these as task
  /// characteristics). Must be <= 64.
  std::size_t feature_count = 8;
};

/// Builds the bundled stand-in for `network`.
SocialDataset LoadDataset(SocialNetwork network,
                          const DatasetOptions& options = {});

/// Draws community-correlated binary node features: each community has a
/// prototype bitset; members inherit prototype bits with high probability
/// and flip others with low probability.
std::vector<std::uint64_t> GenerateNodeFeatures(
    std::size_t node_count, const std::vector<std::uint32_t>& community,
    std::size_t feature_count, Rng& rng);

/// The generator parameters used for a network (exposed for tests and for
/// users who want to perturb the calibration).
CommunityGraphParams DatasetParams(SocialNetwork network);

/// Calibrated default seed for a network.
std::uint64_t DatasetSeed(SocialNetwork network);

}  // namespace siot::graph

#endif  // SIOT_GRAPH_DATASETS_H_
