// Copyright 2026 The siot-trust Authors.
// Community detection and modularity, as used for the paper's Table 1
// (Newman modularity; Blondel et al. "Louvain" fast unfolding — the same
// method the paper cites [34], [35]).

#ifndef SIOT_GRAPH_COMMUNITY_H_
#define SIOT_GRAPH_COMMUNITY_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace siot::graph {

/// Newman modularity Q of a partition (community id per node):
///   Q = sum_c [ m_c / m  -  (d_c / 2m)^2 ]
/// where m_c is the number of intra-community edges of community c and d_c
/// the total degree of its nodes.
double Modularity(const Graph& graph,
                  const std::vector<std::uint32_t>& community);

/// Result of community detection.
struct CommunityResult {
  /// Dense community id per node.
  std::vector<std::uint32_t> community;
  std::size_t community_count = 0;
  double modularity = 0.0;
};

/// Options for Louvain.
struct LouvainParams {
  /// Maximum local-move + aggregate passes.
  std::size_t max_levels = 32;
  /// Maximum sweeps over all nodes per local-move phase.
  std::size_t max_sweeps_per_level = 64;
  /// Minimum modularity gain to keep iterating a local-move phase.
  double min_gain = 1e-7;
  /// Node visiting order is shuffled with this seed (Louvain output is
  /// order-dependent; a fixed seed keeps results reproducible).
  std::uint64_t seed = 42;
};

/// Louvain fast-unfolding modularity optimization.
CommunityResult Louvain(const Graph& graph, const LouvainParams& params = {});

/// Number of distinct community ids (helper).
std::size_t CountCommunities(const std::vector<std::uint32_t>& community);

/// Renumbers community ids to dense [0, count).
std::vector<std::uint32_t> CompactCommunityIds(
    const std::vector<std::uint32_t>& community);

}  // namespace siot::graph

#endif  // SIOT_GRAPH_COMMUNITY_H_
