// Copyright 2026 The siot-trust Authors.

#include "graph/edge_list_io.h"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/string_util.h"

namespace siot::graph {

StatusOr<Graph> ReadEdgeListString(std::string_view text) {
  std::vector<std::pair<std::int64_t, std::int64_t>> raw_edges;
  std::unordered_map<std::int64_t, NodeId> remap;
  std::size_t line_no = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i != text.size() && text[i] != '\n') continue;
    ++line_no;
    std::string_view line = text.substr(start, i - start);
    start = i + 1;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    // Accept spaces or tabs between the two ids.
    std::size_t sep = line.find_first_of(" \t");
    if (sep == std::string_view::npos) {
      return Status::InvalidArgument(
          StrFormat("edge list line %zu: expected 'u v'", line_no));
    }
    auto u = ParseInt(line.substr(0, sep));
    auto v = ParseInt(Trim(line.substr(sep)));
    if (!u.ok() || !v.ok()) {
      return Status::InvalidArgument(
          StrFormat("edge list line %zu: bad node id", line_no));
    }
    if (u.value() < 0 || v.value() < 0) {
      return Status::InvalidArgument(
          StrFormat("edge list line %zu: negative node id", line_no));
    }
    raw_edges.emplace_back(u.value(), v.value());
    for (std::int64_t id : {u.value(), v.value()}) {
      if (!remap.contains(id)) {
        remap.emplace(id, static_cast<NodeId>(remap.size()));
      }
    }
  }
  GraphBuilder builder(remap.size());
  for (const auto& [u, v] : raw_edges) {
    builder.AddEdge(remap.at(u), remap.at(v));
  }
  return builder.Build();
}

StatusOr<Graph> ReadEdgeListFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot open edge list: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ReadEdgeListString(buffer.str());
}

std::string WriteEdgeListString(const Graph& graph) {
  std::string out = StrFormat("# siot edge list: %zu nodes, %zu edges\n",
                              graph.node_count(), graph.edge_count());
  for (const auto& [u, v] : graph.Edges()) {
    out += StrFormat("%u %u\n", u, v);
  }
  return out;
}

Status WriteEdgeListFile(const Graph& graph, const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open for write: " + path);
  file << WriteEdgeListString(graph);
  if (!file) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace siot::graph
