// Copyright 2026 The siot-trust Authors.

#include "service/wal_codec.h"

#include <cmath>
#include <cstring>

#include "common/string_util.h"
#include "trust/trust_store_io.h"

namespace siot::service {

namespace {

void PutU16(std::string* out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutF64(std::string* out, double v) {
  // Raw bit pattern, not a decimal rendering: replay and the admin
  // reconciliation compare doubles by exact equality.
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((bits >> (8 * i)) & 0xFFu));
  }
}

/// Little-endian cursor over a binary payload; every read is
/// bounds-checked so a truncated or trailing-garbage payload surfaces as
/// Corruption, never an out-of-range access.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view bytes) : bytes_(bytes) {}

  bool ReadU8(std::uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<unsigned char>(bytes_[offset_++]);
    return true;
  }

  bool ReadU16(std::uint16_t* v) {
    if (remaining() < 2) return false;
    *v = 0;
    for (int i = 1; i >= 0; --i) {
      *v = static_cast<std::uint16_t>(
          (*v << 8) | static_cast<unsigned char>(bytes_[offset_ + i]));
    }
    offset_ += 2;
    return true;
  }

  bool ReadU32(std::uint32_t* v) {
    if (remaining() < 4) return false;
    *v = 0;
    for (int i = 3; i >= 0; --i) {
      *v = (*v << 8) | static_cast<unsigned char>(bytes_[offset_ + i]);
    }
    offset_ += 4;
    return true;
  }

  bool ReadF64(double* v) {
    if (remaining() < 8) return false;
    std::uint64_t bits = 0;
    for (int i = 7; i >= 0; --i) {
      bits = (bits << 8) | static_cast<unsigned char>(bytes_[offset_ + i]);
    }
    offset_ += 8;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool ReadBytes(std::size_t n, std::string* out) {
    if (remaining() < n) return false;
    out->assign(bytes_.substr(offset_, n));
    offset_ += n;
    return true;
  }

  std::size_t remaining() const { return bytes_.size() - offset_; }

 private:
  std::string_view bytes_;
  std::size_t offset_ = 0;
};

}  // namespace

Status WalOpCorruption(std::string_view payload, const std::string& what) {
  return Status::Corruption(
      StrFormat("WAL op: %s in %s", what.c_str(),
                trust::CorruptionSnippet(payload).c_str()));
}

// ------------------------------------------------------- v1 encoders --

std::string EncodeOutcomeOp(
    trust::AgentId trustor, trust::AgentId trustee, trust::TaskId task,
    const trust::DelegationOutcome& outcome, bool trustor_was_abusive,
    const std::vector<trust::AgentId>& intermediates) {
  std::string op = StrFormat(
      "outcome %u %u %u %d %.17g %.17g %.17g %d %zu", trustor, trustee,
      task, outcome.success ? 1 : 0, outcome.gain, outcome.damage,
      outcome.cost, trustor_was_abusive ? 1 : 0, intermediates.size());
  for (const trust::AgentId agent : intermediates) {
    op += StrFormat(" %u", agent);
  }
  return op;
}

std::string EncodeTaskOp(
    const std::string& name,
    const std::vector<trust::CharacteristicId>& characteristics) {
  std::string op =
      StrFormat("task %s %zu", trust::EscapeNameToken(name).c_str(),
                characteristics.size());
  for (const trust::CharacteristicId c : characteristics) {
    op += StrFormat(" %u", c);
  }
  return op;
}

std::string EncodeThetaOp(trust::AgentId trustee, trust::TaskId task,
                          double theta) {
  if (task == trust::kNoTask) {
    return StrFormat("theta %u * %.17g", trustee, theta);
  }
  return StrFormat("theta %u %u %.17g", trustee, task, theta);
}

std::string EncodeEnvOp(trust::AgentId agent, double indicator) {
  return StrFormat("env %u %.17g", agent, indicator);
}

// ------------------------------------------------------- v2 encoders --

namespace {

std::string BinaryPrologue(WalOpKind kind) {
  std::string op;
  op.push_back(static_cast<char>(kWalFormatBinary));
  op.push_back(static_cast<char>(kind));
  return op;
}

}  // namespace

std::string EncodeOutcomeOpBinary(
    trust::AgentId trustor, trust::AgentId trustee, trust::TaskId task,
    const trust::DelegationOutcome& outcome, bool trustor_was_abusive,
    const std::vector<trust::AgentId>& intermediates) {
  std::string op = BinaryPrologue(WalOpKind::kOutcome);
  op.reserve(43 + 4 * intermediates.size());
  PutU32(&op, trustor);
  PutU32(&op, trustee);
  PutU32(&op, task);
  op.push_back(static_cast<char>((outcome.success ? 1 : 0) |
                                 (trustor_was_abusive ? 2 : 0)));
  PutF64(&op, outcome.gain);
  PutF64(&op, outcome.damage);
  PutF64(&op, outcome.cost);
  PutU32(&op, static_cast<std::uint32_t>(intermediates.size()));
  for (const trust::AgentId agent : intermediates) {
    PutU32(&op, agent);
  }
  return op;
}

std::string EncodeTaskOpBinary(
    const std::string& name,
    const std::vector<trust::CharacteristicId>& characteristics) {
  std::string op = BinaryPrologue(WalOpKind::kTask);
  PutU32(&op, static_cast<std::uint32_t>(name.size()));
  op += name;
  PutU16(&op, static_cast<std::uint16_t>(characteristics.size()));
  for (const trust::CharacteristicId c : characteristics) {
    op.push_back(static_cast<char>(c));
  }
  return op;
}

std::string EncodeThetaOpBinary(trust::AgentId trustee, trust::TaskId task,
                                double theta) {
  std::string op = BinaryPrologue(WalOpKind::kTheta);
  PutU32(&op, trustee);
  PutU32(&op, task);
  PutF64(&op, theta);
  return op;
}

std::string EncodeEnvOpBinary(trust::AgentId agent, double indicator) {
  std::string op = BinaryPrologue(WalOpKind::kEnv);
  PutU32(&op, agent);
  PutF64(&op, indicator);
  return op;
}

// -------------------------------------------------------- dispatching --

std::uint8_t WalPayloadFormat(std::string_view payload) {
  if (!payload.empty() &&
      static_cast<unsigned char>(payload[0]) == kWalFormatBinary) {
    return kWalFormatBinary;
  }
  return kWalFormatText;
}

bool IsKnownWalFormatByte(unsigned char first_byte) {
  // 0x02 opens a v2 binary payload; every v1 text op opens with a
  // printable-ASCII op word. Anything else is no format this codec (or
  // any prior one) ever wrote.
  return first_byte == kWalFormatBinary ||
         (first_byte >= 0x20 && first_byte <= 0x7E);
}

// ----------------------------------------------------- binary decoder --

namespace {

StatusOr<WalOp> DecodeBinaryOp(std::string_view payload) {
  BinaryReader reader(payload.substr(1));  // Past the version byte.
  WalOp op;
  std::uint8_t kind = 0;
  if (!reader.ReadU8(&kind)) {
    return WalOpCorruption(payload, "binary op missing the kind byte");
  }
  switch (static_cast<WalOpKind>(kind)) {
    case WalOpKind::kOutcome: {
      op.kind = WalOpKind::kOutcome;
      std::uint8_t flags = 0;
      std::uint32_t count = 0;
      if (!reader.ReadU32(&op.trustor) || !reader.ReadU32(&op.trustee) ||
          !reader.ReadU32(&op.task) || !reader.ReadU8(&flags) ||
          !reader.ReadF64(&op.outcome.gain) ||
          !reader.ReadF64(&op.outcome.damage) ||
          !reader.ReadF64(&op.outcome.cost) || !reader.ReadU32(&count)) {
        return WalOpCorruption(payload, "truncated binary outcome op");
      }
      if (flags & ~0x3u) {
        return WalOpCorruption(
            payload, StrFormat("unknown outcome flag bits 0x%02x", flags));
      }
      op.outcome.success = (flags & 1) != 0;
      op.trustor_was_abusive = (flags & 2) != 0;
      if (reader.remaining() != 4 * static_cast<std::size_t>(count)) {
        return WalOpCorruption(
            payload,
            StrFormat("intermediate count %u does not match %zu trailing "
                      "bytes",
                      count, reader.remaining()));
      }
      op.intermediates.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        std::uint32_t agent = 0;
        reader.ReadU32(&agent);
        op.intermediates.push_back(agent);
      }
      if (op.trustor == trust::kNoAgent || op.trustee == trust::kNoAgent) {
        return WalOpCorruption(payload, "sentinel agent id");
      }
      // The serving boundary never logs non-finite observations; one
      // here means corruption, and applying it would poison the
      // estimates.
      for (const double value :
           {op.outcome.gain, op.outcome.damage, op.outcome.cost}) {
        if (!std::isfinite(value)) {
          return WalOpCorruption(payload, "non-finite outcome value");
        }
      }
      return op;
    }
    case WalOpKind::kTask: {
      op.kind = WalOpKind::kTask;
      std::uint32_t name_len = 0;
      if (!reader.ReadU32(&name_len) ||
          !reader.ReadBytes(name_len, &op.name)) {
        return WalOpCorruption(payload, "truncated binary task op");
      }
      std::uint16_t count = 0;
      if (!reader.ReadU16(&count) ||
          reader.remaining() != static_cast<std::size_t>(count)) {
        return WalOpCorruption(
            payload, "characteristic count does not match trailing bytes");
      }
      op.characteristics.reserve(count);
      for (std::uint16_t i = 0; i < count; ++i) {
        std::uint8_t c = 0;
        reader.ReadU8(&c);
        if (c >= trust::kMaxCharacteristics) {
          return WalOpCorruption(
              payload, StrFormat("characteristic %u out of range", c));
        }
        op.characteristics.push_back(c);
      }
      return op;
    }
    case WalOpKind::kTheta: {
      op.kind = WalOpKind::kTheta;
      if (!reader.ReadU32(&op.trustee) || !reader.ReadU32(&op.task) ||
          !reader.ReadF64(&op.value) || reader.remaining() != 0) {
        return WalOpCorruption(payload, "malformed binary theta op");
      }
      if (std::isnan(op.value)) {
        // The boundary rejects NaN thresholds (they defeat reconcile's
        // exact-equality compare); one in a log is corruption.
        return WalOpCorruption(payload, "NaN theta");
      }
      return op;
    }
    case WalOpKind::kEnv: {
      op.kind = WalOpKind::kEnv;
      if (!reader.ReadU32(&op.trustor) || !reader.ReadF64(&op.value) ||
          reader.remaining() != 0) {
        return WalOpCorruption(payload, "malformed binary env op");
      }
      if (!(op.value > 0.0 && op.value <= 1.0)) {
        return WalOpCorruption(
            payload,
            StrFormat("indicator %g outside (0, 1]", op.value));
      }
      return op;
    }
  }
  return WalOpCorruption(payload,
                         StrFormat("unknown binary op kind %u", kind));
}

// ------------------------------------------------------- text decoder --

Status OpCorruption(std::string_view payload, const std::string& what) {
  return WalOpCorruption(payload, what);
}

StatusOr<std::int64_t> OpId(std::string_view payload,
                            const std::string& field, const char* name) {
  const auto parsed = ParseInt(field);
  if (!parsed.ok() || parsed.value() < 0 ||
      parsed.value() > trust::kMaxSerializedId) {
    return OpCorruption(payload,
                        StrFormat("malformed %s '%s'", name,
                                  field.c_str()));
  }
  return parsed.value();
}

StatusOr<double> OpDouble(std::string_view payload,
                          const std::string& field, const char* name) {
  const auto parsed = ParseDouble(field);
  if (!parsed.ok()) {
    return OpCorruption(payload,
                        StrFormat("malformed %s '%s'", name,
                                  field.c_str()));
  }
  return parsed.value();
}

StatusOr<bool> OpFlag(std::string_view payload, const std::string& field,
                      const char* name) {
  if (field == "0") return false;
  if (field == "1") return true;
  return OpCorruption(payload, StrFormat("malformed %s '%s'", name,
                                         field.c_str()));
}

StatusOr<WalOp> DecodeTextOp(std::string_view payload) {
  const std::vector<std::string> fields = Split(Trim(payload), ' ');
  if (fields.empty() || fields[0].empty()) {
    return OpCorruption(payload, "empty op");
  }
  const std::string& word = fields[0];
  WalOp op;
  if (word == "outcome") {
    op.kind = WalOpKind::kOutcome;
    if (fields.size() < 10) {
      return OpCorruption(
          payload, StrFormat("expected >= 10 fields, got %zu",
                             fields.size()));
    }
    SIOT_ASSIGN_OR_RETURN(const std::int64_t trustor,
                          OpId(payload, fields[1], "trustor"));
    SIOT_ASSIGN_OR_RETURN(const std::int64_t trustee,
                          OpId(payload, fields[2], "trustee"));
    SIOT_ASSIGN_OR_RETURN(const std::int64_t task,
                          OpId(payload, fields[3], "task"));
    SIOT_ASSIGN_OR_RETURN(const bool success,
                          OpFlag(payload, fields[4], "success"));
    SIOT_ASSIGN_OR_RETURN(const double gain,
                          OpDouble(payload, fields[5], "gain"));
    SIOT_ASSIGN_OR_RETURN(const double damage,
                          OpDouble(payload, fields[6], "damage"));
    SIOT_ASSIGN_OR_RETURN(const double cost,
                          OpDouble(payload, fields[7], "cost"));
    SIOT_ASSIGN_OR_RETURN(const bool abusive,
                          OpFlag(payload, fields[8], "abusive flag"));
    const auto count = ParseInt(fields[9]);
    if (!count.ok() || count.value() < 0 ||
        static_cast<std::size_t>(count.value()) != fields.size() - 10) {
      return OpCorruption(
          payload, StrFormat("intermediate count '%s' does not match %zu "
                             "trailing fields",
                             fields[9].c_str(), fields.size() - 10));
    }
    if (static_cast<trust::AgentId>(trustor) == trust::kNoAgent ||
        static_cast<trust::AgentId>(trustee) == trust::kNoAgent) {
      return OpCorruption(payload, "sentinel agent id");
    }
    // The serving boundary never logs non-finite observations; one here
    // means corruption, and applying it would poison the estimates.
    for (const double value : {gain, damage, cost}) {
      if (!std::isfinite(value)) {
        return OpCorruption(payload, "non-finite outcome value");
      }
    }
    op.trustor = static_cast<trust::AgentId>(trustor);
    op.trustee = static_cast<trust::AgentId>(trustee);
    op.task = static_cast<trust::TaskId>(task);
    op.outcome.success = success;
    op.outcome.gain = gain;
    op.outcome.damage = damage;
    op.outcome.cost = cost;
    op.trustor_was_abusive = abusive;
    op.intermediates.reserve(fields.size() - 10);
    for (std::size_t i = 10; i < fields.size(); ++i) {
      SIOT_ASSIGN_OR_RETURN(const std::int64_t agent,
                            OpId(payload, fields[i], "intermediate"));
      op.intermediates.push_back(static_cast<trust::AgentId>(agent));
    }
    return op;
  }
  if (word == "task") {
    op.kind = WalOpKind::kTask;
    if (fields.size() < 3) {
      return OpCorruption(payload, "expected >= 3 fields");
    }
    const auto name = trust::UnescapeNameToken(fields[1]);
    if (!name.ok()) {
      return OpCorruption(payload, StrFormat("malformed task name '%s'",
                                             fields[1].c_str()));
    }
    const auto count = ParseInt(fields[2]);
    if (!count.ok() || count.value() < 0 ||
        static_cast<std::size_t>(count.value()) != fields.size() - 3) {
      return OpCorruption(
          payload, StrFormat("characteristic count '%s' does not match "
                             "%zu trailing fields",
                             fields[2].c_str(), fields.size() - 3));
    }
    op.name = name.value();
    op.characteristics.reserve(fields.size() - 3);
    for (std::size_t i = 3; i < fields.size(); ++i) {
      SIOT_ASSIGN_OR_RETURN(const std::int64_t c,
                            OpId(payload, fields[i], "characteristic"));
      if (static_cast<std::size_t>(c) >= trust::kMaxCharacteristics) {
        return OpCorruption(
            payload, StrFormat("characteristic %lld out of range",
                               static_cast<long long>(c)));
      }
      op.characteristics.push_back(static_cast<trust::CharacteristicId>(c));
    }
    return op;
  }
  if (word == "theta") {
    op.kind = WalOpKind::kTheta;
    if (fields.size() != 4) {
      return OpCorruption(payload, "expected 4 fields");
    }
    SIOT_ASSIGN_OR_RETURN(const std::int64_t trustee,
                          OpId(payload, fields[1], "trustee"));
    std::int64_t task = static_cast<std::int64_t>(trust::kNoTask);
    if (fields[2] != "*") {
      SIOT_ASSIGN_OR_RETURN(task, OpId(payload, fields[2], "task"));
    }
    SIOT_ASSIGN_OR_RETURN(const double theta,
                          OpDouble(payload, fields[3], "theta"));
    if (std::isnan(theta)) {
      // The boundary rejects NaN thresholds (they defeat reconcile's
      // exact-equality compare); one in a log is corruption.
      return OpCorruption(payload, "NaN theta");
    }
    op.trustee = static_cast<trust::AgentId>(trustee);
    op.task = static_cast<trust::TaskId>(task);
    op.value = theta;
    return op;
  }
  if (word == "env") {
    op.kind = WalOpKind::kEnv;
    if (fields.size() != 3) {
      return OpCorruption(payload, "expected 3 fields");
    }
    SIOT_ASSIGN_OR_RETURN(const std::int64_t agent,
                          OpId(payload, fields[1], "agent"));
    SIOT_ASSIGN_OR_RETURN(const double indicator,
                          OpDouble(payload, fields[2], "indicator"));
    if (!(indicator > 0.0 && indicator <= 1.0)) {
      return OpCorruption(payload,
                          StrFormat("indicator %g outside (0, 1]",
                                    indicator));
    }
    op.trustor = static_cast<trust::AgentId>(agent);
    op.value = indicator;
    return op;
  }
  return OpCorruption(payload,
                      StrFormat("unknown op '%s'", word.c_str()));
}

}  // namespace

StatusOr<WalOp> DecodeAnyVersion(std::string_view payload) {
  if (WalPayloadFormat(payload) == kWalFormatBinary) {
    return DecodeBinaryOp(payload);
  }
  return DecodeTextOp(payload);
}

}  // namespace siot::service
