// Copyright 2026 The siot-trust Authors.
// Versioned checkpoint codec: the ONE place that knows how a shard's full
// engine state is spelled as a checkpoint file, mirroring the WAL codec's
// no-migration discipline (service/wal_codec.h).
//
// Two formats share the first-byte dispatch:
//
//   v1 (text)    the pre-binary layout, parsed forever:
//                  siot-checkpoint 1 <body_bytes> <masked-crc32c>\n
//                  applied_seq <N>\n
//                  <SerializeTrustEngineState body>
//                One whole-body CRC; the body is the canonical text
//                engine-state serialization (sorted sections, %.17g
//                doubles, %-escaped names). Its first byte is the 's' of
//                the magic — printable ASCII, so the dispatch byte is
//                free.
//   v2 (binary)  sectioned fixed little-endian layout:
//                  [0x02]["siotckp"][u64 applied_seq][u32 section_count]
//                  [u32 masked crc32c of the preceding 20 bytes]
//                then section_count sections, each
//                  [u8 section id][u64 body_len][u32 masked crc32c(body)]
//                  [body]
//                Section ids, in file order (a v2 file holds exactly
//                these five, ascending — anything else is a v3 and gets a
//                new format byte):
//                  1 catalog     u32 task_count; per task (id = dense
//                                index): u32 name_len, raw name bytes (no
//                                escaping), u16 part_count, then per part
//                                u8 characteristic + f64 weight. Weights
//                                are ALREADY-normalized raw IEEE-754 bits
//                                (TaskCatalog::Restore skips the
//                                renormalize divide — bit-exact round
//                                trip).
//                  2 thresholds  f64 default_theta; u64 count; per entry
//                                u32 trustee, u32 task (kNoTask
//                                represents itself), f64 theta.
//                  3 env         f64 default_indicator; u64 count; per
//                                entry u32 agent, f64 indicator.
//                  4 usage       u64 count; per entry u32 trustee,
//                                u32 trustor, u64 responsive, u64 abusive.
//                  5 records     u64 count; per entry (pair-major — the
//                                TrustStore's canonical AllRecords order)
//                                u32 trustor, u32 trustee, u32 task,
//                                f64 success/gain/damage/cost,
//                                u64 observations.
//                Every f64 is a raw bit pattern: recovery and the admin
//                reconciliation compare restored state by BYTE equality
//                of the text re-serialization, so the codec must never
//                lose a bit. Per-section lengths + CRCs mean a torn or
//                bit-flipped file is classified Corruption NAMING the
//                damaged section, never a crash or a silently wrong
//                restore.
//
// Decoding dispatches on the first byte (0x02 = binary; printable ASCII =
// v1 text), so a directory checkpointed before the binary format — or a
// mixed directory (text checkpoint + binary WAL tail, or vice versa) —
// recovers byte-identically with no migration step. Encoders for BOTH
// formats stay exported: the service writes v2, the compat fixtures and
// the restore benches write v1 deliberately.
//
// Restore applies the same semantic checks as the text parser (duplicate
// entries, NaN thresholds, indicators outside (0, 1], characteristics
// out of range) so a corrupt-but-CRC-valid file can never trip an engine
// SIOT_CHECK or restore state the text serializer would not reproduce.

#ifndef SIOT_SERVICE_CHECKPOINT_CODEC_H_
#define SIOT_SERVICE_CHECKPOINT_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace siot::trust {
class TrustEngine;
}  // namespace siot::trust

namespace siot::service {

/// Checkpoint format versions. v2's leading byte is the version number
/// itself; v1 is implied by a printable-ASCII first byte (the 's' of its
/// "siot-checkpoint" magic).
inline constexpr std::uint8_t kCheckpointFormatText = 1;
inline constexpr std::uint8_t kCheckpointFormatBinary = 2;

/// v2 section ids, in file order.
enum class CheckpointSection : std::uint8_t {
  kCatalog = 1,
  kThresholds = 2,
  kEnv = 3,
  kUsage = 4,
  kRecords = 5,
};
inline constexpr std::size_t kCheckpointSectionCount = 5;

/// Encodes the v1 text checkpoint (header + applied_seq line +
/// SerializeTrustEngineState), byte-identical to what the pre-binary
/// service wrote.
std::string EncodeCheckpointText(std::uint64_t applied_seq,
                                 const trust::TrustEngine& engine);

/// Encodes the v2 sectioned binary checkpoint. When `section_ends` is
/// non-null it receives the byte offset of the END of each section (five
/// ascending offsets, the last = total size) — the checkpoint writer's
/// mid-section kill-points stand exactly on these boundaries.
std::string EncodeCheckpointBinary(std::uint64_t applied_seq,
                                   const trust::TrustEngine& engine,
                                   std::vector<std::size_t>* section_ends);

/// The format version `bytes` claims (kCheckpointFormatBinary for a
/// leading 0x02, kCheckpointFormatText otherwise).
std::uint8_t CheckpointFormat(std::string_view bytes);

/// Framing-validated checkpoint summary: which format, and the sequence
/// number of the last WAL op folded in.
struct CheckpointInfo {
  std::uint8_t format = kCheckpointFormatText;
  std::uint64_t applied_seq = 0;
};

/// Validates `bytes` as a checkpoint of either format — header shape,
/// per-section lengths, every CRC — and extracts the applied sequence
/// WITHOUT restoring an engine (the follower's rewind fast path: most
/// checkpoint replacements land at the already-applied seq and need no
/// restore). Corruption names `path` and, for v2, the damaged section.
StatusOr<CheckpointInfo> ValidateCheckpoint(std::string_view bytes,
                                            const std::string& path);

/// Decodes a checkpoint of either format into `applied_seq` and a
/// freshly constructed `engine` (FailedPrecondition if the engine
/// already holds state). Corruption on any framing, checksum, or
/// semantic violation — never a crash, never a partial restore that a
/// later serialize would spell differently.
Status DecodeCheckpoint(std::string_view bytes, const std::string& path,
                        std::uint64_t* applied_seq,
                        trust::TrustEngine* engine);

}  // namespace siot::service

#endif  // SIOT_SERVICE_CHECKPOINT_CODEC_H_
