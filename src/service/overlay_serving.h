// Copyright 2026 The siot-trust Authors.
// The transitive-trust read path shared by TrustService (single-node)
// and ReplicaService (follower-served, the production deployment).
//
// §4.3 transitivity needs a whole-graph overlay; the serving layer
// shards by trustor. The split that reconciles them: a service FREEZES
// its shard stores under their locks just long enough to assemble one
// trust::VersionedOverlaySnapshot (CSR overlay + per-shard applied_seq
// version vector), then hands it to an OverlaySnapshotIndex, which does
// the expensive part — per-task hop-cache preparation — with no shard
// lock held, seals the search, and publishes the result by swapping a
// shared_ptr. Queries copy that shared_ptr under a mutex held for
// nanoseconds and then run entirely on immutable state: readers never
// block on a rebuild, and a rebuild never waits for readers.
//
// Staleness is explicit, not hidden: every answer carries the snapshot's
// version (the per-shard applied_seq vector it reflects) and its age, so
// callers can reason about what they read — the same contract
// ReplicationLag() gives the direct read path.

#ifndef SIOT_SERVICE_OVERLAY_SERVING_H_
#define SIOT_SERVICE_OVERLAY_SERVING_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "graph/graph.h"
#include "trust/overlay_builder.h"
#include "trust/transitivity.h"
#include "trust/types.h"

namespace siot::service {

/// One transitive trust query: potential trustees of `trustor` for
/// `task` under `method` (§4.3 / §5.5).
struct TransitiveTrustRequest {
  trust::AgentId trustor = trust::kNoAgent;
  trust::TaskId task = trust::kNoTask;
  trust::TransitivityMethod method = trust::TransitivityMethod::kAggressive;
};

/// A transitive answer plus the staleness evidence it was served from.
struct TransitiveTrustResult {
  trust::TransitivityResult result;
  /// Per-shard applied_seq vector of the snapshot that answered.
  trust::SnapshotVersion version;
  /// Time since that snapshot was published.
  std::chrono::milliseconds snapshot_age{0};
};

/// Point-in-time snapshot serving state, reported alongside
/// ReplicationLag() so monitoring sees both read paths' staleness.
struct OverlaySnapshotInfo {
  /// False until the first successful build is published.
  bool built = false;
  trust::SnapshotVersion version;
  std::chrono::milliseconds age{0};
  std::size_t node_count = 0;
  std::size_t directed_edge_count = 0;
  /// Tasks with sealed hop caches (= catalog size at build time).
  std::size_t prepared_tasks = 0;
  std::uint64_t rebuild_count = 0;
  /// Shard-lock-holding assembly cost of the last published build (the
  /// hop-cache preparation on top of it runs lock-free).
  std::chrono::milliseconds last_assembly_cost{0};
};

/// Lock-free-read snapshot publication point; see file comment. All
/// methods are thread-safe. One instance lives inside each service.
class OverlaySnapshotIndex {
 public:
  /// Arms the index: queries validate against `graph` / run under
  /// `params`. Call once before the first Publish; `graph` must be
  /// non-null. Not re-entrant with Publish/Query.
  Status Configure(std::shared_ptr<const graph::Graph> graph,
                   trust::TransitivityParams params);

  bool enabled() const;

  /// The configured social graph (null before Configure) — services pass
  /// it to VersionedOverlaySnapshot so snapshot and index agree.
  std::shared_ptr<const graph::Graph> graph() const;

  /// Prepares hop caches for EVERY task in the snapshot's catalog
  /// (fanned out via `executor` when provided), seals the search, and
  /// atomically publishes. The caller must NOT hold shard locks — this
  /// is the expensive step the snapshot design keeps lock-free.
  /// `assembly_cost` is the lock-holding build time, for Info().
  Status Publish(
      std::shared_ptr<const trust::VersionedOverlaySnapshot> snapshot,
      std::chrono::milliseconds assembly_cost = std::chrono::milliseconds{0},
      const trust::TransitivitySearch::PrepareExecutor& executor = {});

  /// Serves one query from the current snapshot. FailedPrecondition
  /// before Configure or before the first Publish; InvalidArgument for a
  /// trustor outside the graph or a task the snapshot's catalog does not
  /// hold (a task registered after the build stays InvalidArgument until
  /// the next rebuild — staleness surfaces as an error, never a crash).
  StatusOr<TransitiveTrustResult> Query(
      const TransitiveTrustRequest& request) const;

  /// Batched queries, all answered from ONE snapshot (mid-batch rebuilds
  /// cannot split a batch across versions). Validates the whole batch up
  /// front and rejects it atomically, like every service batch API.
  StatusOr<std::vector<TransitiveTrustResult>> BatchQuery(
      std::span<const TransitiveTrustRequest> requests) const;

  OverlaySnapshotInfo Info() const;

  /// The published snapshot bundle itself (null before the first
  /// Publish). Immutable and self-owning — equivalence checks serialize
  /// it, and offline consumers (e.g. batch training over follower
  /// snapshots) read it without holding up rebuilds.
  std::shared_ptr<const trust::VersionedOverlaySnapshot> CurrentSnapshot()
      const;

 private:
  /// Everything one published build owns. Readers hold it via
  /// shared_ptr, so a swap never invalidates an in-flight query.
  struct Prepared {
    std::shared_ptr<const trust::VersionedOverlaySnapshot> snapshot;
    /// Sealed: pure-read queries only (trust::TransitivitySearch::Seal).
    std::unique_ptr<const trust::TransitivitySearch> search;
    std::chrono::steady_clock::time_point published_at;
    std::size_t prepared_tasks = 0;
    std::chrono::milliseconds assembly_cost{0};
  };

  std::shared_ptr<const Prepared> Current() const;
  Status ValidateAgainst(const Prepared& prepared,
                         const TransitiveTrustRequest& request) const;
  TransitiveTrustResult Answer(const Prepared& prepared,
                               const TransitiveTrustRequest& request) const;

  /// Guards the fields below (not queries — those run on the immutable
  /// Prepared they pulled out under this lock). Leaf lock: held for
  /// pointer swaps only, never across a build or a query.
  mutable Mutex mutex_;
  std::shared_ptr<const graph::Graph> graph_ SIOT_GUARDED_BY(mutex_);
  trust::TransitivityParams params_ SIOT_GUARDED_BY(mutex_);
  bool enabled_ SIOT_GUARDED_BY(mutex_) = false;
  std::shared_ptr<const Prepared> current_ SIOT_GUARDED_BY(mutex_);
  std::uint64_t rebuild_count_ SIOT_GUARDED_BY(mutex_) = 0;
};

}  // namespace siot::service

#endif  // SIOT_SERVICE_OVERLAY_SERVING_H_
