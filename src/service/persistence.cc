// Copyright 2026 The siot-trust Authors.

#include "service/persistence.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/checksum.h"
#include "common/file_util.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace siot::service {

namespace {

constexpr std::size_t kFrameHeaderBytes = 16;  // u32 len, u32 crc, u64 seq
constexpr std::uint32_t kMaxPayloadBytes = 1u << 28;

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

std::uint32_t GetU32(std::string_view bytes) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[static_cast<
        std::size_t>(i)]);
  }
  return v;
}

std::uint64_t GetU64(std::string_view bytes) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[static_cast<
        std::size_t>(i)]);
  }
  return v;
}

Status Fire(const FaultHook& hook, PersistStage stage, std::size_t shard) {
  if (!hook) return Status::OK();
  return hook(stage, shard);
}

}  // namespace

// -------------------------------------------------------------- paths --

std::string ShardWalPath(const std::string& directory, std::size_t shard) {
  return directory + "/shard-" + std::to_string(shard) + ".wal";
}

std::string ShardCheckpointPath(const std::string& directory,
                                std::size_t shard) {
  return directory + "/shard-" + std::to_string(shard) + ".ckpt";
}

std::string ManifestPath(const std::string& directory) {
  return directory + "/manifest";
}

// ---------------------------------------------------------- WalWriter --

WalWriter::~WalWriter() { Close(); }

Status WalWriter::Open(const std::string& path,
                       std::uint64_t start_offset) {
  Close();
  poisoned_ = false;
  path_ = path;
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    return Status::IoError(ErrnoMessage("cannot open WAL", path));
  }
  // Drop any torn tail a crash mid-append left behind: appending new
  // frames after garbage bytes would make them unreachable at recovery.
  struct ::stat st;
  if (::fstat(fd_, &st) != 0) {
    Close();
    return Status::IoError(ErrnoMessage("cannot stat WAL", path));
  }
  if (static_cast<std::uint64_t>(st.st_size) > start_offset) {
    if (::ftruncate(fd_, static_cast<::off_t>(start_offset)) != 0) {
      Close();
      return Status::IoError(ErrnoMessage("cannot truncate WAL tail", path));
    }
    if (::fsync(fd_) != 0) {
      Close();
      return Status::IoError(ErrnoMessage("fsync failed", path));
    }
  }
  // Make the file's existence durable (first boot creates it).
  const std::string parent =
      std::filesystem::path(path).parent_path().string();
  return SyncDirectory(parent.empty() ? "." : parent);
}

Status WalWriter::Append(const std::vector<std::string>& payloads,
                         std::uint64_t first_seq, bool sync,
                         const FaultHook& hook, std::size_t shard) {
  if (fd_ < 0) return Status::FailedPrecondition("WAL is not open");
  if (poisoned_) {
    return Status::FailedPrecondition(
        "WAL writer poisoned by an earlier failed append: " + path_);
  }
  std::string buffer;
  std::uint64_t seq = first_seq;
  for (const std::string& payload : payloads) {
    SIOT_CHECK_MSG(payload.size() < kMaxPayloadBytes,
                   "WAL payload of %zu bytes", payload.size());
    std::string seq_bytes;
    PutU64(&seq_bytes, seq);
    const std::uint32_t crc =
        Crc32cMask(Crc32c(payload, Crc32c(seq_bytes)));
    PutU32(&buffer, static_cast<std::uint32_t>(payload.size()));
    PutU32(&buffer, crc);
    buffer += seq_bytes;
    buffer += payload;
    ++seq;
  }
  // Any failure from here on — including a simulated crash from the
  // fault hook — leaves the on-disk tail in an unknown state, so the
  // writer is poisoned (see header).
  const auto fail = [this](Status status) {
    poisoned_ = true;
    return status;
  };
  if (Status s = Fire(hook, PersistStage::kWalBeforeAppend, shard);
      !s.ok()) {
    return fail(std::move(s));
  }
  if (hook) {
    // Two-part write with a kill-point in the middle: a crash mid-append
    // must leave a torn frame, and the harness needs to stand exactly
    // there.
    const std::size_t half = buffer.size() / 2;
    if (Status s = WriteFully(fd_, buffer.data(), half, path_); !s.ok()) {
      return fail(std::move(s));
    }
    if (Status s = Fire(hook, PersistStage::kWalMidAppend, shard);
        !s.ok()) {
      return fail(std::move(s));
    }
    if (Status s = WriteFully(fd_, buffer.data() + half,
                              buffer.size() - half, path_);
        !s.ok()) {
      return fail(std::move(s));
    }
  } else {
    if (Status s = WriteFully(fd_, buffer.data(), buffer.size(), path_);
        !s.ok()) {
      return fail(std::move(s));
    }
  }
  if (sync) {
    if (Status s = Fire(hook, PersistStage::kWalBeforeSync, shard);
        !s.ok()) {
      return fail(std::move(s));
    }
    if (::fsync(fd_) != 0) {
      return fail(Status::IoError(ErrnoMessage("fsync failed", path_)));
    }
  }
  return Status::OK();
}

Status WalWriter::Truncate() {
  if (fd_ < 0) return Status::FailedPrecondition("WAL is not open");
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IoError(ErrnoMessage("cannot truncate WAL", path_));
  }
  if (::fsync(fd_) != 0) {
    return Status::IoError(ErrnoMessage("fsync failed", path_));
  }
  return Status::OK();
}

void WalWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

WalFrameDecode DecodeWalFrame(std::string_view bytes, WalEntry* entry,
                              std::size_t* frame_bytes,
                              std::string* error) {
  if (bytes.empty()) return WalFrameDecode::kEnd;
  if (bytes.size() < kFrameHeaderBytes) return WalFrameDecode::kTorn;
  const std::uint32_t len = GetU32(bytes.substr(0, 4));
  const std::uint32_t stored_crc = GetU32(bytes.substr(4, 4));
  if (len > kMaxPayloadBytes) {
    // No append ever produces an oversized length field, and a torn
    // write only shortens a frame — this can never become valid.
    if (error) {
      *error = StrFormat("frame length %u exceeds the %u-byte limit",
                         len, kMaxPayloadBytes);
    }
    return WalFrameDecode::kCorrupt;
  }
  if (kFrameHeaderBytes + static_cast<std::size_t>(len) > bytes.size()) {
    // The declared payload extends past the bytes on disk: a crash (or
    // an append still landing) mid-write. The missing bytes may yet
    // arrive, so this is the retryable kind.
    return WalFrameDecode::kTorn;
  }
  if (len > 0) {
    // Version dispatch BEFORE the CRC pass: a complete frame whose
    // payload opens with a byte no codec version ever wrote (not the
    // binary version byte, not printable v1 text) can never decode, so
    // classify it without paying for the checksum of up to 256 MiB.
    const auto first =
        static_cast<unsigned char>(bytes[kFrameHeaderBytes]);
    if (!IsKnownWalFormatByte(first)) {
      if (error) {
        *error = StrFormat(
            "unknown payload format byte 0x%02x on a complete %u-byte "
            "frame",
            first, len);
      }
      return WalFrameDecode::kCorrupt;
    }
  }
  const std::string_view checked = bytes.substr(8, 8 + len);
  if (Crc32cMask(Crc32c(checked)) != stored_crc) {
    // Every byte the header promised is present, so waiting cannot fix
    // the mismatch: bit rot, or a reader at a stale offset.
    if (error) {
      *error = StrFormat("CRC mismatch on a complete %u-byte frame", len);
    }
    return WalFrameDecode::kCorrupt;
  }
  if (entry != nullptr) {
    entry->seq = GetU64(bytes.substr(8, 8));
    entry->payload = std::string(bytes.substr(kFrameHeaderBytes, len));
  }
  if (frame_bytes != nullptr) {
    *frame_bytes = kFrameHeaderBytes + static_cast<std::size_t>(len);
  }
  return WalFrameDecode::kFrame;
}

StatusOr<WalContents> ReadWal(const std::string& path) {
  WalContents contents;
  if (!FileExists(path)) return contents;
  SIOT_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
  std::size_t offset = 0;
  for (;;) {
    const std::string_view rest(bytes.data() + offset,
                                bytes.size() - offset);
    WalEntry entry;
    std::size_t frame_bytes = 0;
    std::string error;
    const WalFrameDecode decoded =
        DecodeWalFrame(rest, &entry, &frame_bytes, &error);
    if (decoded == WalFrameDecode::kFrame) {
      contents.entries.push_back(std::move(entry));
      offset += frame_bytes;
      continue;
    }
    if (decoded == WalFrameDecode::kTorn) {
      contents.tail = WalTailKind::kTorn;
    } else if (decoded == WalFrameDecode::kCorrupt) {
      contents.tail = WalTailKind::kCorrupt;
      contents.tail_error =
          StrFormat("%s at byte %zu of %s", error.c_str(), offset,
                    path.c_str());
    }
    break;
  }
  contents.valid_bytes = offset;
  contents.dropped_bytes = bytes.size() - offset;
  contents.dropped_tail = contents.dropped_bytes != 0;
  return contents;
}

// ------------------------------------------------------ DirectoryLock --

DirectoryLock::~DirectoryLock() { Release(); }

DirectoryLock::DirectoryLock(DirectoryLock&& other) noexcept
    : fd_(other.fd_), directory_(std::move(other.directory_)) {
  other.fd_ = -1;
  other.directory_.clear();
}

DirectoryLock& DirectoryLock::operator=(DirectoryLock&& other) noexcept {
  if (this != &other) {
    Release();
    fd_ = other.fd_;
    directory_ = std::move(other.directory_);
    other.fd_ = -1;
    other.directory_.clear();
  }
  return *this;
}

Status DirectoryLock::Acquire(const std::string& directory) {
  Release();
  const std::string path = directory + "/LOCK";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("cannot open lock file", path));
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    const int flock_errno = errno;  // close() below may clobber errno.
    ::close(fd);
    if (flock_errno == EWOULDBLOCK) {
      return Status::FailedPrecondition(
          "persistence directory " + directory +
          " is already open in another live service instance");
    }
    return Status::IoError("cannot lock " + path + ": " +
                           std::strerror(flock_errno));
  }
  fd_ = fd;
  directory_ = directory;
  return Status::OK();
}

void DirectoryLock::Release() {
  if (fd_ >= 0) {
    // Closing drops the flock.
    ::close(fd_);
    fd_ = -1;
  }
  directory_.clear();
}

// ------------------------------------------------------ GroupCommitter --

namespace {

/// Durably flushes every descriptor of one group-commit round. On Linux
/// the per-shard WALs share a filesystem, so one syncfs(2) commits the
/// journal transaction covering ALL of them — the whole point of
/// coalescing; elsewhere fall back to a per-descriptor fsync loop.
Status FlushRound(const std::vector<int>& fds) {
#ifdef __linux__
  if (::syncfs(fds.front()) != 0) {
    return Status::IoError(ErrnoMessage("syncfs failed", "group commit"));
  }
  return Status::OK();
#else
  for (const int fd : fds) {
    if (::fsync(fd) != 0) {
      return Status::IoError(ErrnoMessage("fsync failed", "group commit"));
    }
  }
  return Status::OK();
#endif
}

}  // namespace

Status GroupCommitter::Sync(std::span<const int> fds, const FaultHook& hook,
                            std::size_t shard) {
  if (fds.empty()) return Status::OK();
  sync_requests_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(&mutex_);
  if (!failure_.ok()) return failure_;
  const std::uint64_t my_round = round_;
  pending_fds_.insert(pending_fds_.end(), fds.begin(), fds.end());
  if (leader_active_) {
    // Enrolled in a round someone else leads; its flush covers us. The
    // leader advances `flushed_` even when the flush FAILS (later rounds
    // must not wait on it forever), so "my round was flushed past" is
    // not the same as "my bytes are durable" — only a round before the
    // first failed one really hit the platter.
    while (flushed_ <= my_round && failure_.ok()) cv_.Wait(mutex_);
    if (my_round >= failed_round_) return failure_;
    return Status::OK();
  }
  // This caller leads round `my_round`: give co-committers the window to
  // pile in, let the previous round's flush drain (both waits bounded —
  // the window by itself, the drain by one in-flight flush), then take
  // the pending set and flush it OUTSIDE the mutex so the next round
  // can form meanwhile.
  leader_active_ = true;
  if (window_.count() > 0) {
    const auto deadline = std::chrono::steady_clock::now() + window_;
    while (failure_.ok()) {
      if (!cv_.WaitUntil(mutex_, deadline)) break;
    }
  }
  while (flushed_ != my_round && failure_.ok()) cv_.Wait(mutex_);
  if (!failure_.ok()) {
    leader_active_ = false;
    cv_.NotifyAll();
    return failure_;
  }
  const std::vector<int> round_fds = std::move(pending_fds_);
  pending_fds_.clear();
  round_ = my_round + 1;
  leader_active_ = false;
  lock.Unlock();
  Status flush = Fire(hook, PersistStage::kGroupCommitFlush, shard);
  if (flush.ok()) flush = FlushRound(round_fds);
  flushes_.fetch_add(1, std::memory_order_relaxed);
  lock.Lock();
  if (!flush.ok() && failure_.ok()) {
    // Every writer coalesced into this flush — and every later caller —
    // gets the SAME degradation: their appended frames' durability is
    // unknown, exactly like a failed inline fsync, and only a restart
    // (recovery re-reads the WALs) squares the ledger.
    failure_ = Status::FailedPrecondition(
        "group commit flush failed; the durability of every coalesced "
        "append is unknown — restart to recover (" + flush.message() +
        ")");
    failed_round_ = my_round;
  }
  flushed_ = my_round + 1;
  cv_.NotifyAll();
  if (!failure_.ok()) return failure_;
  return Status::OK();
}

// ----------------------------------------------------------------- ops --

Status ApplyWalOp(std::string_view payload, trust::TrustEngine* engine) {
  SIOT_ASSIGN_OR_RETURN(const WalOp op, DecodeAnyVersion(payload));
  switch (op.kind) {
    case WalOpKind::kOutcome: {
      // A corrupt log must never trip an engine SIOT_CHECK: the engine
      // treats an unknown task id as a programming error, so check it
      // here the way the serving boundary does.
      if (static_cast<std::size_t>(op.task) >= engine->catalog().size()) {
        return WalOpCorruption(
            payload, StrFormat("task %llu not in the catalog (%zu tasks)",
                               static_cast<unsigned long long>(op.task),
                               engine->catalog().size()));
      }
      engine->ReportOutcome(op.trustor, op.trustee, op.task, op.outcome,
                            op.trustor_was_abusive, op.intermediates);
      return Status::OK();
    }
    case WalOpKind::kTask: {
      const auto added =
          engine->catalog().AddUniform(op.name, op.characteristics);
      if (!added.ok()) {
        return WalOpCorruption(payload,
                               "invalid task: " + added.status().message());
      }
      return Status::OK();
    }
    case WalOpKind::kTheta:
      engine->reverse_evaluator().SetThreshold(op.trustee, op.task,
                                               op.value);
      return Status::OK();
    case WalOpKind::kEnv:
      engine->environment().SetIndicator(op.trustor, op.value);
      return Status::OK();
  }
  return WalOpCorruption(payload, "unknown op kind");
}

// --------------------------------------------------- ShardPersistence --

ShardPersistence::ShardPersistence(const PersistenceOptions* options,
                                   std::size_t shard)
    : options_(options),
      shard_(shard),
      wal_path_(ShardWalPath(options->directory, shard)),
      checkpoint_path_(ShardCheckpointPath(options->directory, shard)) {}

Status ShardPersistence::Recover(trust::TrustEngine* engine) {
  // A .tmp checkpoint is a crash artifact of an unfinished Checkpoint();
  // the durable .ckpt (if any) is authoritative.
  SIOT_RETURN_IF_ERROR(RemoveFileIfExists(checkpoint_path_ + ".tmp"));
  std::uint64_t applied_seq = 0;
  if (FileExists(checkpoint_path_)) {
    SIOT_ASSIGN_OR_RETURN(const std::string bytes,
                          ReadFileToString(checkpoint_path_));
    // The codec dispatches on the file's own format byte, so a directory
    // checkpointed before the binary format restores with no migration.
    SIOT_RETURN_IF_ERROR(DecodeCheckpoint(bytes, checkpoint_path_,
                                          &applied_seq, engine));
  }
  SIOT_ASSIGN_OR_RETURN(const WalContents wal, ReadWal(wal_path_));
  if (wal.dropped_tail) {
    // A torn tail is the expected artifact of a crash mid-append (the
    // write was never acknowledged). A corrupt tail — a full-length
    // frame with a bad CRC or length — means bit rot may have cut off
    // records that WERE acknowledged; recovery still proceeds with the
    // consistent prefix, but the operator must hear the difference.
    SIOT_LOG_WARN(
        "WAL %s: dropping %llu trailing bytes past the last valid frame "
        "(%zu records recovered) — %s",
        wal_path_.c_str(),
        static_cast<unsigned long long>(wal.dropped_bytes),
        wal.entries.size(),
        wal.tail == WalTailKind::kTorn
            ? "torn tail, expected after a crash mid-append"
            : ("corrupt frame, possibly cutting acknowledged writes: " +
               wal.tail_error)
                  .c_str());
  }
  std::uint64_t last_seq = applied_seq;
  appends_since_checkpoint_ = 0;
  for (const WalEntry& entry : wal.entries) {
    if (entry.seq <= applied_seq) continue;  // Folded into the checkpoint.
    // Appends are assigned consecutive sequence numbers under the shard
    // lock, so the replayed tail must be contiguous; a gap or repeat
    // means frames were reordered or the file was spliced.
    if (entry.seq != last_seq + 1) {
      return Status::Corruption(StrFormat(
          "WAL %s: sequence jumped from %llu to %llu",
          wal_path_.c_str(), static_cast<unsigned long long>(last_seq),
          static_cast<unsigned long long>(entry.seq)));
    }
    SIOT_RETURN_IF_ERROR(ApplyWalOp(entry.payload, engine));
    last_seq = entry.seq;
    ++appends_since_checkpoint_;
  }
  next_seq_ = last_seq + 1;
  wal_bytes_ = wal.valid_bytes;
  return writer_.Open(wal_path_, wal.valid_bytes);
}

Status ShardPersistence::Log(const std::vector<std::string>& payloads) {
  return LogImpl(payloads, /*defer_sync=*/false);
}

Status ShardPersistence::LogDeferSync(
    const std::vector<std::string>& payloads) {
  return LogImpl(payloads, /*defer_sync=*/true);
}

Status ShardPersistence::LogImpl(const std::vector<std::string>& payloads,
                                 bool defer_sync) {
  if (payloads.empty()) return Status::OK();
  // With a committer, appends never sync inline: either this call
  // enrolls in a group-commit round below, or (defer_sync) the caller
  // batches several shards' descriptors into one round.
  const bool inline_sync =
      options_->sync_every_append && committer_ == nullptr;
  SIOT_RETURN_IF_ERROR(writer_.Append(payloads, next_seq_, inline_sync,
                                      options_->fault_hook, shard_));
  if (inline_sync) ++inline_fsyncs_;
  if (options_->sync_every_append && committer_ != nullptr && !defer_sync) {
    const int fds[] = {writer_.fd()};
    if (Status s = committer_->Sync(fds, options_->fault_hook, shard_);
        !s.ok()) {
      // The frames may or may not have reached the device; the writer is
      // as poisoned as if its own fsync had failed.
      writer_.Poison();
      return s;
    }
  }
  // The frames are durable from here on (deferred-sync callers: durable
  // once THEIR committer round flushes; they must not acknowledge
  // before it) — advance the counters before the post-append kill-point
  // so even a "crashed" object stays internally consistent.
  next_seq_ += payloads.size();
  appends_since_checkpoint_ += payloads.size();
  for (const std::string& payload : payloads) {
    wal_bytes_ += kFrameHeaderBytes + payload.size();
  }
  return Fire(options_->fault_hook, PersistStage::kWalAfterAppend,
              shard_);
}

Status ShardPersistence::Checkpoint(const trust::TrustEngine& engine) {
  const std::uint64_t applied_seq = next_seq_ - 1;
  std::vector<std::size_t> section_ends;
  const std::string content =
      options_->checkpoint_format == kCheckpointFormatText
          ? EncodeCheckpointText(applied_seq, engine)
          : EncodeCheckpointBinary(applied_seq, engine, &section_ends);
  const std::string tmp = checkpoint_path_ + ".tmp";
  const FaultHook& hook = options_->fault_hook;

  // Kill-points of the tmp write, in byte order: kCheckpointMidWrite
  // stands at the half-way cut (a torn file that ends mid-section), and
  // kCheckpointMidSection stands at the end of every binary section (a
  // torn file that ends EXACTLY on a section boundary — lengths and CRCs
  // valid as far as they go, the next section simply absent).
  std::vector<std::pair<std::size_t, PersistStage>> cuts;
  cuts.emplace_back(content.size() / 2, PersistStage::kCheckpointMidWrite);
  for (const std::size_t end : section_ends) {
    cuts.emplace_back(end, PersistStage::kCheckpointMidSection);
  }
  std::stable_sort(cuts.begin(), cuts.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError(ErrnoMessage("cannot open", tmp));
  Status status;
  std::size_t written = 0;
  for (const auto& [cut, stage] : cuts) {
    if (status.ok() && cut > written) {
      status = WriteFully(fd, content.data() + written, cut - written,
                          tmp);
      written = cut;
    }
    if (status.ok()) status = Fire(hook, stage, shard_);
  }
  if (status.ok() && content.size() > written) {
    status = WriteFully(fd, content.data() + written,
                        content.size() - written, tmp);
  }
  if (status.ok() && ::fsync(fd) != 0) {
    status = Status::IoError(ErrnoMessage("fsync failed", tmp));
  }
  ::close(fd);
  SIOT_RETURN_IF_ERROR(status);

  SIOT_RETURN_IF_ERROR(
      Fire(hook, PersistStage::kCheckpointBeforeRename, shard_));
  if (std::rename(tmp.c_str(), checkpoint_path_.c_str()) != 0) {
    return Status::IoError(ErrnoMessage("rename failed", tmp));
  }
  SIOT_RETURN_IF_ERROR(SyncDirectory(options_->directory));
  SIOT_RETURN_IF_ERROR(
      Fire(hook, PersistStage::kCheckpointBeforeTruncate, shard_));
  SIOT_RETURN_IF_ERROR(writer_.Truncate());
  appends_since_checkpoint_ = 0;
  wal_bytes_ = 0;
  return Status::OK();
}

}  // namespace siot::service
