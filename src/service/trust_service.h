// Copyright 2026 The siot-trust Authors.
// TrustService: the concurrent serving layer over the trust model.
//
// The engine-level components (TrustEngine and everything below it) are
// deliberately single-threaded; this layer makes them serve heavy mixed
// read/write traffic. The design exploits a locality fact of the paper's
// model: every piece of state an operation for trustor X touches is keyed
// by X —
//   * X's outcome estimates live under (X, trustee, task) in the store,
//   * the reverse-evaluation usage history a trustee keeps about X is
//     keyed (trustee, X) and is only ever consulted for X's own requests,
//   * delegation requests read, and outcome reports write, only X's rows.
// So the service shards BY TRUSTOR: each shard owns a full TrustEngine and
// a striped siot::SharedMutex. Queries (PreEvaluate, RequestDelegation —
// read-only since the Eq. 23/24 rework) take the shard's lock shared, so
// the read-mostly steady state serves concurrently; outcome reports take
// it exclusive. Operations for different trustors never contend on state,
// only on stripe co-residency.
//
// Cross-trustor configuration (task catalog, reverse-evaluation thresholds,
// environment indicators) is replicated to every shard under a global
// admin mutex; these are rare control-plane writes.
//
// Batch APIs group a request vector by shard and take each shard lock once
// per batch, which is what the throughput bench drives. Results always
// come back in input order. Because shards share no data-plane state, a
// multi-threaded run over any partition of the trustors is equivalent to a
// single-threaded run of the same per-trustor operation sequences — the
// service and bench tests assert exactly that.

#ifndef SIOT_SERVICE_TRUST_SERVICE_H_
#define SIOT_SERVICE_TRUST_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "graph/graph.h"
#include "service/overlay_serving.h"
#include "service/persistence.h"
#include "trust/trust_engine.h"
#include "trust/types.h"

namespace siot::service {

/// Service configuration.
struct TrustServiceConfig {
  /// Number of shards (lock stripes / engine partitions); clamped to >= 1.
  /// More shards mean less write contention and more replicated admin
  /// state; 4× the serving thread count is a good default.
  std::size_t shard_count = 16;
  /// Engine configuration applied to every shard.
  trust::TrustEngineConfig engine;
};

/// One pre-evaluation query TW_X←Y(τ).
struct PreEvaluateRequest {
  trust::AgentId trustor = trust::kNoAgent;
  trust::AgentId trustee = trust::kNoAgent;
  trust::TaskId task = trust::kNoTask;
};

/// One delegation request (TrustEngine::RequestDelegation arguments).
struct DelegationServiceRequest {
  trust::AgentId trustor = trust::kNoAgent;
  trust::TaskId task = trust::kNoTask;
  std::vector<trust::AgentId> candidates;
  /// Enables the Eq. 24 self-execution comparison when present.
  std::optional<trust::OutcomeEstimates> self_estimates;
};

/// One post-evaluation report (TrustEngine::ReportOutcome arguments).
struct OutcomeReport {
  trust::AgentId trustor = trust::kNoAgent;
  trust::AgentId trustee = trust::kNoAgent;
  trust::TaskId task = trust::kNoTask;
  trust::DelegationOutcome outcome;
  /// Relay chain between trustor and trustee (environment Eq. 29).
  std::vector<trust::AgentId> intermediates;
  bool trustor_was_abusive = false;
};

/// One shard's durable log position (see TrustService::WalPositions).
struct ShardWalPosition {
  std::size_t shard = 0;
  /// Sequence number of the shard's last durably appended op (0 = none;
  /// monotone over the directory's whole life — checkpoints truncate the
  /// WAL file but never rewind sequence numbers).
  std::uint64_t last_seq = 0;
  /// Current WAL file size in bytes (drops to 0 at a checkpoint).
  std::uint64_t wal_bytes = 0;
};

/// Point-in-time service counters and store sizes.
struct TrustServiceStats {
  std::size_t shard_count = 0;
  std::size_t record_count = 0;       ///< Σ shard store records.
  std::size_t pair_count = 0;         ///< Σ shard store directed pairs.
  std::uint64_t pre_evaluations = 0;  ///< Queries served since start.
  std::uint64_t delegation_requests = 0;
  std::uint64_t outcome_reports = 0;
  /// Durable-mode flush accounting (all zero without persistence or with
  /// sync_every_append off). `wal_sync_requests` counts logical "make
  /// this durable" requests; `wal_fsyncs` counts device flushes actually
  /// issued. Without group commit they advance in lockstep; with it,
  /// `wal_syncs_coalesced` = requests − flushes is the number of syncs
  /// the committer absorbed into a shared flush.
  std::uint64_t wal_sync_requests = 0;
  std::uint64_t wal_fsyncs = 0;
  std::uint64_t wal_syncs_coalesced = 0;
};

/// Sharded, thread-safe trust serving layer; see file comment. All public
/// methods are safe to call concurrently from any number of threads.
class TrustService {
 public:
  explicit TrustService(TrustServiceConfig config = {});
  ~TrustService();

  // ------------------------------------------------------- durability --

  /// Opens a DURABLE service over `options.directory`: every mutation is
  /// written to a per-shard CRC-framed WAL before it is applied, periodic
  /// checkpoints bound recovery time, and this call replays
  /// checkpoint + WAL tail so the returned service resumes byte-identical
  /// to the state at the last acknowledged write of the previous
  /// incarnation. The directory is created on first use and carries a
  /// manifest binding it to this shard count + engine config; reopening
  /// under a different configuration is refused (records would land on
  /// the wrong shards / replay would diverge). Corrupt files surface as
  /// Status Corruption, never a crash. See service/persistence.h.
  static StatusOr<std::unique_ptr<TrustService>> Open(
      const TrustServiceConfig& config, const PersistenceOptions& options);

  /// Open with an already-held directory fence: the failover path.
  /// ReplicaService::Promote acquires the LOCK the moment the old leader
  /// is observed dead and hands it here, so there is no release/
  /// re-acquire window in which a third node could seize the directory.
  /// An unheld `fence` behaves exactly like the two-argument Open.
  static StatusOr<std::unique_ptr<TrustService>> Open(
      const TrustServiceConfig& config, const PersistenceOptions& options,
      DirectoryLock fence);

  /// Per-shard durable WAL positions, in shard order — and a frame-
  /// visibility barrier: each position is read under its shard's lock,
  /// so every append that completed before this call is fully written
  /// to its WAL file (a follower reading the file sees whole frames up
  /// to `last_seq`, never a prefix of them). A follower whose applied
  /// sequence reaches `last_seq` on every shard has replicated every
  /// write acknowledged before the barrier. Empty when the service is
  /// not persistent.
  std::vector<ShardWalPosition> WalPositions() const;

  /// Checkpoints every shard now (serialize state, atomically replace the
  /// checkpoint file, truncate the WAL). Concurrency-safe: each shard is
  /// checkpointed under its exclusive lock, so data-plane traffic on
  /// other shards proceeds. FailedPrecondition when the service was not
  /// opened with persistence.
  Status Checkpoint();

  /// True when this service was created by Open (durable mode).
  bool persistent() const { return shards_[0]->persist != nullptr; }

  /// First error a background/periodic checkpoint hit, if any (writes
  /// are still durable in the WAL when a checkpoint fails; this surfaces
  /// the degradation for monitoring).
  Status background_status() const;

  /// True once a WAL append failed. A failed append can leave an admin
  /// write partially replicated across shards, so the service fails all
  /// further mutations (FailedPrecondition) instead of serving from
  /// divergent replicas — restart to recover: WAL replay plus the
  /// shard-0 reconciliation squares the ledger. Reads keep working.
  bool degraded() const {
    return degraded_.load(std::memory_order_acquire);
  }

  // ----------------------------------------------------------- control --
  // Rare, globally serialized; replicated to every shard (and, in durable
  // mode, logged to every shard's WAL — each shard's checkpoint + WAL is
  // self-contained). A crash can interrupt replication midway; recovery
  // completes the partial admin write from shard 0's copy, which
  // replication always reaches first.

  /// Registers a task type in every shard's catalog. Returns the task id,
  /// identical across shards (registration order is the id order).
  StatusOr<trust::TaskId> RegisterTask(
      const std::string& name,
      const std::vector<trust::CharacteristicId>& characteristics);

  /// Sets `trustee`'s reverse-evaluation threshold θ_y(τ)
  /// (task = kNoTask ⇒ all tasks).
  Status SetReverseThreshold(trust::AgentId trustee, trust::TaskId task,
                             double theta);

  /// Sets `agent`'s instantaneous environment indicator (in (0, 1]);
  /// InvalidArgument outside that range.
  Status SetEnvironmentIndicator(trust::AgentId agent, double indicator);

  // -------------------------------------------------------- data plane --
  // Unlike the engine underneath (where an unknown task id is a
  // programming error that trips SIOT_CHECK), the serving boundary treats
  // malformed requests as data: every data-plane call validates the task
  // id against the replicated catalog and returns InvalidArgument instead
  // of bringing the process down. Batch calls validate the WHOLE batch
  // up front and reject it atomically — no partial application.

  /// Pre-evaluation TW_X←Y(τ) (shared lock on the trustor's shard).
  StatusOr<double> PreEvaluate(trust::AgentId trustor,
                               trust::AgentId trustee,
                               trust::TaskId task) const;

  /// Full delegation request (shared lock on the trustor's shard): ranking
  /// under the configured strategy, Eq. 24 self comparison, reverse
  /// evaluations.
  StatusOr<trust::DelegationRequestResult> RequestDelegation(
      const DelegationServiceRequest& request) const;

  /// Post-evaluation (exclusive lock on the trustor's shard).
  Status ReportOutcome(const OutcomeReport& report);

  /// Batched variants: one lock acquisition per touched shard, results in
  /// input order.
  StatusOr<std::vector<double>> BatchPreEvaluate(
      std::span<const PreEvaluateRequest> requests) const;
  StatusOr<std::vector<trust::DelegationRequestResult>>
  BatchRequestDelegation(
      std::span<const DelegationServiceRequest> requests) const;
  Status BatchReportOutcome(std::span<const OutcomeReport> reports);

  // ------------------------------------------- transitive read path --
  // §4.3 transitivity needs a whole-graph overlay spanning every shard.
  // The PRODUCTION home of this read path is a follower
  // (ReplicaService) — it already holds all shards' replicated state and
  // tolerates staleness, so the expensive assembly never holds leader
  // shard locks. This single-node variant serves small deployments and
  // the equivalence tests; its rebuild briefly holds every shard's
  // SHARED lock (reads keep serving, writers stall for the assembly).

  /// Arms transitive serving over `graph` (agent i = node i). Queries
  /// stay FailedPrecondition until the first RebuildOverlaySnapshot.
  Status EnableTransitiveServing(std::shared_ptr<const graph::Graph> graph,
                                 trust::TransitivityParams params);

  /// Assembles a fresh overlay snapshot from all shard stores under one
  /// simultaneous all-shard shared-lock hold (one consistent cut; the
  /// version stamp is the per-shard durable last_seq vector, all zeros
  /// without persistence), then prepares + publishes it lock-free.
  /// Readers of the previous snapshot are never blocked.
  Status RebuildOverlaySnapshot();

  /// Transitive trust query against the published snapshot; the result
  /// carries the snapshot version + age it was answered from.
  StatusOr<TransitiveTrustResult> TransitiveTrust(
      const TransitiveTrustRequest& request) const;

  /// Batched variant; the whole batch is validated up front, rejected
  /// atomically, and answered from one snapshot.
  StatusOr<std::vector<TransitiveTrustResult>> BatchTransitiveTrust(
      std::span<const TransitiveTrustRequest> requests) const;

  /// Version/age/size of the currently served snapshot.
  OverlaySnapshotInfo OverlayInfo() const { return overlay_.Info(); }

  /// The served snapshot bundle (null before the first rebuild).
  std::shared_ptr<const trust::VersionedOverlaySnapshot>
  CurrentOverlaySnapshot() const {
    return overlay_.CurrentSnapshot();
  }

  // ------------------------------------------------------- observation --

  std::size_t shard_count() const { return shards_.size(); }
  /// Shard index serving `trustor` (stable for the service's lifetime).
  std::size_t ShardOf(trust::AgentId trustor) const;
  TrustServiceStats Stats() const;

  /// Direct engine access for tests and offline inspection. NOT
  /// synchronized — the caller must guarantee no concurrent service use.
  /// Justified escape: this is the documented caller-synchronized test
  /// hook; taking the shard lock here would let production code lean on
  /// an accessor whose contract is "no concurrent use".
  const trust::TrustEngine& shard_engine(std::size_t shard) const
      SIOT_NO_THREAD_SAFETY_ANALYSIS {
    return shards_[shard]->engine;
  }

 private:
  struct Shard {
    explicit Shard(const trust::TrustEngineConfig& config)
        : engine(config) {}
    mutable SharedMutex mutex;
    trust::TrustEngine engine SIOT_GUARDED_BY(mutex);
    /// Durable mode only. The pointer itself is set once before
    /// concurrency starts (Open) and never reseated; the pointee is
    /// mutated by appends/checkpoints under the exclusive lock and read
    /// (positions, stats) under at least the shared lock.
    std::unique_ptr<ShardPersistence> persist SIOT_PT_GUARDED_BY(mutex);
  };

  /// Groups [0, count) by ShardOf(trustor-of-index) and runs `body(shard,
  /// indices)` once per non-empty shard bucket.
  template <typename TrustorOf, typename Body>
  void GroupByShard(std::size_t count, const TrustorOf& trustor_of,
                    const Body& body) const;

  /// InvalidArgument unless `task` names a registered catalog entry.
  Status ValidateTask(trust::TaskId task) const;

  /// FailedPrecondition once a WAL append has failed (see degraded()).
  Status CheckNotDegraded() const;

  /// Wraps a WAL append: a failure marks the service degraded. With
  /// `defer_sync`, the append's flush is left to a later
  /// GroupSyncShards call covering the whole batch (no-op difference
  /// when group commit is off — see ShardPersistence::LogDeferSync).
  Status LogOrDegrade(ShardPersistence* persist,
                      const std::vector<std::string>& payloads,
                      bool defer_sync = false);

  /// Flushes the deferred appends of `shard_ids` in ONE group-commit
  /// round (the cross-shard half of group commit: a batch or admin write
  /// touching N shards pays one flush, not N). On failure every touched
  /// shard's writer is poisoned — its frames' durability is unknown —
  /// and the service degrades. No-op when group commit is off.
  Status GroupSyncShards(const std::vector<std::size_t>& shard_ids);

  /// Completes admin writes a crash left partially replicated: shard 0
  /// (which replication reaches first) is authoritative; lagging shards
  /// get the missing catalog entries / thresholds / indicators logged to
  /// their WALs and applied. No-op after a clean shutdown.
  Status ReconcileAdminState();

  /// Checkpoints one shard; caller holds the shard's exclusive lock.
  Status CheckpointShardLocked(Shard& shard) SIOT_REQUIRES(shard.mutex);

  /// Inline auto-checkpoint after data-plane appends (durable mode with
  /// checkpoint_every_appends set); caller holds the exclusive lock. The
  /// triggering write is already durable + applied, so a checkpoint
  /// failure only logs + records background degradation.
  void MaybeAutoCheckpointLocked(Shard& shard) SIOT_REQUIRES(shard.mutex);

  /// Guarded reads used by RebuildOverlaySnapshot, whose MultiReaderLock
  /// holds EVERY shard's lock shared but as a dynamic set the analysis
  /// cannot track; each helper re-asserts the one capability its access
  /// needs (the assert-capability audit — see MultiReaderLock).
  const trust::TrustEngine& EngineOfShardAllLocked(const Shard& shard) const;
  std::uint64_t DurableSeqOfShardAllLocked(const Shard& shard) const;

  void StartCheckpointThread();
  void StopCheckpointThread();

  std::vector<std::unique_ptr<Shard>> shards_;
  /// Snapshot-backed transitive read path (EnableTransitiveServing).
  OverlaySnapshotIndex overlay_;
  /// Lock rank 1 of 3: admin_mutex_ → shard.mutex (ascending index) →
  /// background_mutex_. The shard locks are per-instance and dynamic, so
  /// only the admin_mutex_ → background_mutex_ edge is expressible to
  /// the analysis; the shard tier is held by convention (and audited by
  /// MultiReaderLock's comment).
  Mutex admin_mutex_ SIOT_ACQUIRED_BEFORE(background_mutex_);
  /// Durable mode configuration; ShardPersistence instances point at it.
  PersistenceOptions persistence_;
  /// Cross-shard fsync coalescer (durable mode with a nonzero
  /// group_commit_window — possibly via SIOT_GROUP_COMMIT_WINDOW_US);
  /// null means legacy per-shard inline fsync.
  std::unique_ptr<GroupCommitter> group_committer_;
  /// Held for the service's lifetime in durable mode (one live service
  /// per directory).
  DirectoryLock directory_lock_;
  std::thread checkpoint_thread_;
  /// Lock rank 3 of 3 (leaf): taken under a held shard lock by
  /// MaybeAutoCheckpointLocked; never the other way around.
  mutable Mutex background_mutex_;
  CondVar background_cv_;
  bool stopping_ SIOT_GUARDED_BY(background_mutex_) = false;
  Status background_status_ SIOT_GUARDED_BY(background_mutex_);
  std::atomic<bool> degraded_{false};
  /// Registered task count, readable without shard locks (RegisterTask
  /// publishes after full replication).
  std::atomic<trust::TaskId> task_count_{0};
  mutable std::atomic<std::uint64_t> pre_evaluations_{0};
  mutable std::atomic<std::uint64_t> delegation_requests_{0};
  std::atomic<std::uint64_t> outcome_reports_{0};
};

/// Shard index serving `trustor` in a `shard_count`-shard deployment.
/// The ONE routing function shared by TrustService and ReplicaService:
/// a follower replays shard i's WAL into its own shard i, so leader and
/// replicas must agree on routing forever — never fork this hash.
/// (SplitMix64 finalizer: adjacent agent ids spread across shards so a
/// dense trustor range doesn't pile onto one stripe.)
std::size_t ShardIndexForTrustor(trust::AgentId trustor,
                                 std::size_t shard_count);

/// The manifest contents binding a persistence directory to a shard
/// count + engine configuration. Exposed so a replica can verify it was
/// opened under the exact configuration the leader's directory was
/// created with (WAL replay under a different config silently diverges).
std::string BuildServiceManifest(std::size_t shard_count,
                                 const TrustServiceConfig& config);

}  // namespace siot::service

#endif  // SIOT_SERVICE_TRUST_SERVICE_H_
