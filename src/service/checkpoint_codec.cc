// Copyright 2026 The siot-trust Authors.

#include "service/checkpoint_codec.h"

#include <cmath>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "common/checksum.h"
#include "common/string_util.h"
#include "trust/trust_engine.h"
#include "trust/trust_store.h"
#include "trust/trust_store_io.h"
#include "trust/types.h"

namespace siot::service {

namespace {

constexpr char kCheckpointMagic[] = "siot-checkpoint";
/// v2 prologue after the format byte; with it, 8 bytes total.
constexpr char kBinaryMagic[] = "siotckp";
constexpr std::size_t kBinaryMagicBytes = 7;
/// [format byte][magic][u64 applied_seq][u32 section_count]
/// [u32 masked crc32c of the preceding 20 bytes]. The header CRC is what
/// keeps applied_seq honest — every other byte of the file sits under a
/// section CRC, and a silently flipped sequence number would skip or
/// double-apply WAL frames on recovery.
constexpr std::size_t kBinaryHeaderBytes = 1 + kBinaryMagicBytes + 8 + 4 + 4;
/// [u8 id][u64 body_len][u32 masked crc32c(body)].
constexpr std::size_t kSectionHeaderBytes = 1 + 8 + 4;

void PutU16(std::string* out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutF64(std::string* out, double v) {
  // Raw bit pattern, not a decimal rendering: restored state is compared
  // by byte equality of its re-serialization.
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

/// Little-endian cursor; every read is bounds-checked so a lying count
/// or length field surfaces as a failed read, never an out-of-range
/// access.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view bytes) : bytes_(bytes) {}

  bool ReadU8(std::uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<unsigned char>(bytes_[offset_++]);
    return true;
  }

  bool ReadU16(std::uint16_t* v) {
    if (remaining() < 2) return false;
    *v = 0;
    for (int i = 1; i >= 0; --i) {
      *v = static_cast<std::uint16_t>(
          (*v << 8) | static_cast<unsigned char>(bytes_[offset_ + i]));
    }
    offset_ += 2;
    return true;
  }

  bool ReadU32(std::uint32_t* v) {
    if (remaining() < 4) return false;
    *v = 0;
    for (int i = 3; i >= 0; --i) {
      *v = (*v << 8) | static_cast<unsigned char>(bytes_[offset_ + i]);
    }
    offset_ += 4;
    return true;
  }

  bool ReadU64(std::uint64_t* v) {
    if (remaining() < 8) return false;
    *v = 0;
    for (int i = 7; i >= 0; --i) {
      *v = (*v << 8) | static_cast<unsigned char>(bytes_[offset_ + i]);
    }
    offset_ += 8;
    return true;
  }

  bool ReadF64(double* v) {
    std::uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool ReadBytes(std::size_t n, std::string* out) {
    if (remaining() < n) return false;
    out->assign(bytes_.substr(offset_, n));
    offset_ += n;
    return true;
  }

  bool ReadView(std::size_t n, std::string_view* out) {
    if (remaining() < n) return false;
    *out = bytes_.substr(offset_, n);
    offset_ += n;
    return true;
  }

  std::size_t remaining() const { return bytes_.size() - offset_; }

 private:
  std::string_view bytes_;
  std::size_t offset_ = 0;
};

const char* SectionName(CheckpointSection id) {
  switch (id) {
    case CheckpointSection::kCatalog:
      return "catalog";
    case CheckpointSection::kThresholds:
      return "thresholds";
    case CheckpointSection::kEnv:
      return "env";
    case CheckpointSection::kUsage:
      return "usage";
    case CheckpointSection::kRecords:
      return "records";
  }
  return "unknown";
}

Status HeaderCorruption(const std::string& path, const std::string& what) {
  return Status::Corruption("checkpoint " + path + ": " + what);
}

Status SectionCorruption(const std::string& path, CheckpointSection id,
                         const std::string& what) {
  return Status::Corruption(StrFormat("checkpoint %s: %s section: %s",
                                      path.c_str(), SectionName(id),
                                      what.c_str()));
}

}  // namespace

// --------------------------------------------------------- v1 (text) --

std::string EncodeCheckpointText(std::uint64_t applied_seq,
                                 const trust::TrustEngine& engine) {
  const std::string body =
      StrFormat("applied_seq %llu\n",
                static_cast<unsigned long long>(applied_seq)) +
      trust::SerializeTrustEngineState(engine);
  return StrFormat("%s 1 %zu %u\n", kCheckpointMagic, body.size(),
                   Crc32cMask(Crc32c(body))) +
         body;
}

namespace {

/// Parses the v1 text layout: header line, whole-body CRC, applied_seq
/// line, then (engine != nullptr) the text engine-state body.
Status DecodeCheckpointTextImpl(std::string_view bytes,
                                const std::string& path,
                                std::uint64_t* applied_seq,
                                trust::TrustEngine* engine) {
  const std::size_t newline = bytes.find('\n');
  if (newline == std::string_view::npos) {
    return HeaderCorruption(path, "missing header");
  }
  const std::vector<std::string> header =
      Split(std::string(bytes.substr(0, newline)), ' ');
  if (header.size() != 4 || header[0] != kCheckpointMagic ||
      header[1] != "1") {
    return HeaderCorruption(path, "bad header '" +
                                      std::string(bytes.substr(
                                          0, newline)) +
                                      "'");
  }
  const auto body_bytes = ParseInt(header[2]);
  const auto stored_crc = ParseInt(header[3]);
  if (!body_bytes.ok() || body_bytes.value() < 0 || !stored_crc.ok() ||
      stored_crc.value() < 0 || stored_crc.value() > 0xFFFFFFFFll) {
    return HeaderCorruption(path, "malformed header fields");
  }
  std::string_view body = bytes.substr(newline + 1);
  if (body.size() != static_cast<std::size_t>(body_bytes.value())) {
    return HeaderCorruption(
        path,
        StrFormat("body is %zu bytes, header says %lld (truncated?)",
                  body.size(),
                  static_cast<long long>(body_bytes.value())));
  }
  if (Crc32cMask(Crc32c(body)) !=
      static_cast<std::uint32_t>(stored_crc.value())) {
    return HeaderCorruption(path, "CRC mismatch (bit rot?)");
  }
  // The body's first line carries the last WAL sequence folded in.
  const std::size_t body_newline = body.find('\n');
  const std::vector<std::string> seq_fields = Split(
      std::string(body.substr(0, body_newline == std::string_view::npos
                                     ? body.size()
                                     : body_newline)),
      ' ');
  const auto seq = seq_fields.size() == 2 && seq_fields[0] == "applied_seq"
                       ? ParseInt(seq_fields[1])
                       : StatusOr<std::int64_t>(
                             Status::Corruption("missing applied_seq"));
  if (!seq.ok() || seq.value() < 0) {
    return HeaderCorruption(path, "missing applied_seq line");
  }
  *applied_seq = static_cast<std::uint64_t>(seq.value());
  if (engine != nullptr) {
    SIOT_RETURN_IF_ERROR(trust::DeserializeTrustEngineState(
        body.substr(body_newline + 1), engine));
  }
  return Status::OK();
}

}  // namespace

// ------------------------------------------------------- v2 (binary) --

std::string EncodeCheckpointBinary(
    std::uint64_t applied_seq, const trust::TrustEngine& engine,
    std::vector<std::size_t>* section_ends) {
  std::string out;
  out.push_back(static_cast<char>(kCheckpointFormatBinary));
  out.append(kBinaryMagic, kBinaryMagicBytes);
  PutU64(&out, applied_seq);
  PutU32(&out, static_cast<std::uint32_t>(kCheckpointSectionCount));
  PutU32(&out, Crc32cMask(Crc32c(out)));
  if (section_ends != nullptr) section_ends->clear();

  const auto append_section = [&](CheckpointSection id,
                                  const std::string& body) {
    out.push_back(static_cast<char>(id));
    PutU64(&out, body.size());
    PutU32(&out, Crc32cMask(Crc32c(body)));
    out += body;
    if (section_ends != nullptr) section_ends->push_back(out.size());
  };

  std::string body;
  // 1 catalog: dense task ids are implicit in the order.
  const trust::TaskCatalog& catalog = engine.catalog();
  PutU32(&body, static_cast<std::uint32_t>(catalog.size()));
  for (trust::TaskId id = 0; id < catalog.size(); ++id) {
    const trust::Task& task = catalog.Get(id);
    PutU32(&body, static_cast<std::uint32_t>(task.name().size()));
    body += task.name();
    PutU16(&body, static_cast<std::uint16_t>(task.parts().size()));
    for (const trust::WeightedCharacteristic& part : task.parts()) {
      body.push_back(static_cast<char>(part.id));
      PutF64(&body, part.weight);
    }
  }
  append_section(CheckpointSection::kCatalog, body);

  // 2 thresholds.
  body.clear();
  const trust::ReverseEvaluator& reverse = engine.reverse_evaluator();
  PutF64(&body, reverse.default_threshold());
  const auto thresholds = reverse.AllThresholds();
  PutU64(&body, thresholds.size());
  for (const trust::ThresholdEntry& entry : thresholds) {
    PutU32(&body, entry.trustee);
    PutU32(&body, entry.task);
    PutF64(&body, entry.theta);
  }
  append_section(CheckpointSection::kThresholds, body);

  // 3 env.
  body.clear();
  const trust::EnvironmentModel& environment = engine.environment();
  PutF64(&body, environment.default_indicator());
  const auto indicators = environment.AllIndicators();
  PutU64(&body, indicators.size());
  for (const auto& [agent, indicator] : indicators) {
    PutU32(&body, agent);
    PutF64(&body, indicator);
  }
  append_section(CheckpointSection::kEnv, body);

  // 4 usage.
  body.clear();
  const auto histories = reverse.AllHistories();
  PutU64(&body, histories.size());
  for (const trust::UsageEntry& entry : histories) {
    PutU32(&body, entry.trustee);
    PutU32(&body, entry.trustor);
    PutU64(&body, entry.history.responsive_uses);
    PutU64(&body, entry.history.abusive_uses);
  }
  append_section(CheckpointSection::kUsage, body);

  // 5 records, pair-major (AllRecords' canonical sort).
  body.clear();
  const auto records = engine.store().AllRecords();
  PutU64(&body, records.size());
  for (const auto& [key, record] : records) {
    PutU32(&body, key.trustor);
    PutU32(&body, key.trustee);
    PutU32(&body, key.task);
    PutF64(&body, record.estimates.success_rate);
    PutF64(&body, record.estimates.gain);
    PutF64(&body, record.estimates.damage);
    PutF64(&body, record.estimates.cost);
    PutU64(&body, record.observations);
  }
  append_section(CheckpointSection::kRecords, body);
  return out;
}

namespace {

// Per-entry byte sizes of the fixed-stride sections, used to reject a
// lying count field before it sizes a loop (the bounds-checked reader
// would catch it too, but rejecting up front names the real problem).
constexpr std::size_t kThresholdEntryBytes = 4 + 4 + 8;
constexpr std::size_t kEnvEntryBytes = 4 + 8;
constexpr std::size_t kUsageEntryBytes = 4 + 4 + 8 + 8;
constexpr std::size_t kRecordEntryBytes = 4 + 4 + 4 + 4 * 8 + 8;

Status CountedSection(const std::string& path, CheckpointSection id,
                      std::uint64_t count, std::size_t entry_bytes,
                      std::size_t remaining) {
  if (count > remaining / entry_bytes) {
    return SectionCorruption(
        path, id,
        StrFormat("count %llu exceeds the %zu bytes the section holds",
                  static_cast<unsigned long long>(count), remaining));
  }
  return Status::OK();
}

Status DecodeCatalogSection(std::string_view body, const std::string& path,
                            trust::TrustEngine* engine) {
  constexpr CheckpointSection kId = CheckpointSection::kCatalog;
  BinaryReader reader(body);
  std::uint32_t task_count = 0;
  if (!reader.ReadU32(&task_count)) {
    return SectionCorruption(path, kId, "truncated task count");
  }
  for (std::uint32_t t = 0; t < task_count; ++t) {
    std::uint32_t name_len = 0;
    std::string name;
    std::uint16_t part_count = 0;
    if (!reader.ReadU32(&name_len) || !reader.ReadBytes(name_len, &name) ||
        !reader.ReadU16(&part_count)) {
      return SectionCorruption(
          path, kId, StrFormat("truncated task %u of %u", t, task_count));
    }
    std::vector<trust::WeightedCharacteristic> parts;
    parts.reserve(part_count);
    for (std::uint16_t p = 0; p < part_count; ++p) {
      std::uint8_t characteristic = 0;
      double weight = 0.0;
      if (!reader.ReadU8(&characteristic) || !reader.ReadF64(&weight)) {
        return SectionCorruption(
            path, kId, StrFormat("truncated part %u of task %u", p, t));
      }
      // Reject out-of-range before the engine sees it: the catalog masks
      // characteristics into a 64-bit word and SIOT_CHECKs the range.
      if (characteristic >= trust::kMaxCharacteristics) {
        return SectionCorruption(
            path, kId,
            StrFormat("characteristic %u out of range in task %u",
                      characteristic, t));
      }
      parts.push_back({characteristic, weight});
    }
    // Restore, not Add: the stored weights are already normalized, and
    // renormalizing would perturb them (1/3 + 1/3 + 1/3 != 1.0).
    const auto added =
        engine->catalog().Restore(std::move(name), std::move(parts));
    if (!added.ok()) {
      return SectionCorruption(
          path, kId, "invalid task: " + added.status().message());
    }
  }
  if (reader.remaining() != 0) {
    return SectionCorruption(
        path, kId,
        StrFormat("%zu trailing bytes", reader.remaining()));
  }
  return Status::OK();
}

Status DecodeThresholdsSection(std::string_view body,
                               const std::string& path,
                               trust::TrustEngine* engine) {
  constexpr CheckpointSection kId = CheckpointSection::kThresholds;
  BinaryReader reader(body);
  double default_theta = 0.0;
  std::uint64_t count = 0;
  if (!reader.ReadF64(&default_theta) || !reader.ReadU64(&count)) {
    return SectionCorruption(path, kId, "truncated section header");
  }
  SIOT_RETURN_IF_ERROR(CountedSection(path, kId, count,
                                      kThresholdEntryBytes,
                                      reader.remaining()));
  engine->reverse_evaluator().SetDefaultThreshold(default_theta);
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t trustee = 0;
    std::uint32_t task = 0;
    double theta = 0.0;
    if (!reader.ReadU32(&trustee) || !reader.ReadU32(&task) ||
        !reader.ReadF64(&theta)) {
      return SectionCorruption(path, kId, "truncated entry");
    }
    if (std::isnan(theta)) {
      // The service boundary rejects NaN thresholds (they defeat the
      // exact-equality compare admin reconciliation uses), so one in a
      // checkpoint is corruption.
      return SectionCorruption(path, kId, "NaN theta");
    }
    if (!seen.insert((static_cast<std::uint64_t>(trustee) << 32) | task)
             .second) {
      return SectionCorruption(
          path, kId,
          StrFormat("duplicate threshold for trustee %u", trustee));
    }
    engine->reverse_evaluator().SetThreshold(
        trustee, static_cast<trust::TaskId>(task), theta);
  }
  if (reader.remaining() != 0) {
    return SectionCorruption(
        path, kId, StrFormat("%zu trailing bytes", reader.remaining()));
  }
  return Status::OK();
}

Status DecodeEnvSection(std::string_view body, const std::string& path,
                        trust::TrustEngine* engine) {
  constexpr CheckpointSection kId = CheckpointSection::kEnv;
  BinaryReader reader(body);
  double default_indicator = 0.0;
  std::uint64_t count = 0;
  if (!reader.ReadF64(&default_indicator) || !reader.ReadU64(&count)) {
    return SectionCorruption(path, kId, "truncated section header");
  }
  // The environment model SIOT_CHECKs its (0, 1] invariant; a corrupt
  // file must fail with Corruption, not a crash.
  if (!(default_indicator > 0.0 && default_indicator <= 1.0)) {
    return SectionCorruption(
        path, kId,
        StrFormat("default indicator %g outside (0, 1]",
                  default_indicator));
  }
  SIOT_RETURN_IF_ERROR(CountedSection(path, kId, count, kEnvEntryBytes,
                                      reader.remaining()));
  engine->environment().SetDefaultIndicator(default_indicator);
  std::unordered_set<trust::AgentId> seen;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t agent = 0;
    double indicator = 0.0;
    if (!reader.ReadU32(&agent) || !reader.ReadF64(&indicator)) {
      return SectionCorruption(path, kId, "truncated entry");
    }
    if (!(indicator > 0.0 && indicator <= 1.0)) {
      return SectionCorruption(
          path, kId,
          StrFormat("indicator %g outside (0, 1] for agent %u", indicator,
                    agent));
    }
    if (!seen.insert(agent).second) {
      return SectionCorruption(
          path, kId,
          StrFormat("duplicate indicator for agent %u", agent));
    }
    engine->environment().SetIndicator(agent, indicator);
  }
  if (reader.remaining() != 0) {
    return SectionCorruption(
        path, kId, StrFormat("%zu trailing bytes", reader.remaining()));
  }
  return Status::OK();
}

Status DecodeUsageSection(std::string_view body, const std::string& path,
                          trust::TrustEngine* engine) {
  constexpr CheckpointSection kId = CheckpointSection::kUsage;
  BinaryReader reader(body);
  std::uint64_t count = 0;
  if (!reader.ReadU64(&count)) {
    return SectionCorruption(path, kId, "truncated section header");
  }
  SIOT_RETURN_IF_ERROR(CountedSection(path, kId, count, kUsageEntryBytes,
                                      reader.remaining()));
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t trustee = 0;
    std::uint32_t trustor = 0;
    std::uint64_t responsive = 0;
    std::uint64_t abusive = 0;
    if (!reader.ReadU32(&trustee) || !reader.ReadU32(&trustor) ||
        !reader.ReadU64(&responsive) || !reader.ReadU64(&abusive)) {
      return SectionCorruption(path, kId, "truncated entry");
    }
    if (!seen.insert((static_cast<std::uint64_t>(trustee) << 32) | trustor)
             .second) {
      return SectionCorruption(
          path, kId,
          StrFormat("duplicate history for trustee %u trustor %u",
                    trustee, trustor));
    }
    engine->reverse_evaluator().RestoreHistory(
        trustee, trustor,
        trust::UsageHistory{static_cast<std::size_t>(responsive),
                            static_cast<std::size_t>(abusive)});
  }
  if (reader.remaining() != 0) {
    return SectionCorruption(
        path, kId, StrFormat("%zu trailing bytes", reader.remaining()));
  }
  return Status::OK();
}

Status DecodeRecordsSection(std::string_view body, const std::string& path,
                            trust::TrustEngine* engine) {
  constexpr CheckpointSection kId = CheckpointSection::kRecords;
  BinaryReader reader(body);
  std::uint64_t count = 0;
  if (!reader.ReadU64(&count)) {
    return SectionCorruption(path, kId, "truncated section header");
  }
  SIOT_RETURN_IF_ERROR(CountedSection(path, kId, count, kRecordEntryBytes,
                                      reader.remaining()));
  std::unordered_set<trust::TrustKey, trust::TrustKeyHash> seen;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t trustor = 0;
    std::uint32_t trustee = 0;
    std::uint32_t task = 0;
    double s = 0.0;
    double g = 0.0;
    double d = 0.0;
    double c = 0.0;
    std::uint64_t observations = 0;
    if (!reader.ReadU32(&trustor) || !reader.ReadU32(&trustee) ||
        !reader.ReadU32(&task) || !reader.ReadF64(&s) ||
        !reader.ReadF64(&g) || !reader.ReadF64(&d) || !reader.ReadF64(&c) ||
        !reader.ReadU64(&observations)) {
      return SectionCorruption(path, kId, "truncated entry");
    }
    const trust::TrustKey key{trustor, trustee,
                              static_cast<trust::TaskId>(task)};
    if (!seen.insert(key).second) {
      return SectionCorruption(
          path, kId,
          StrFormat("duplicate record for (%u, %u, %u)", trustor, trustee,
                    task));
    }
    engine->store().PutRecord(
        key.trustor, key.trustee, key.task,
        trust::TrustRecord{trust::OutcomeEstimates{s, g, d, c},
                           static_cast<std::size_t>(observations)});
  }
  if (reader.remaining() != 0) {
    return SectionCorruption(
        path, kId, StrFormat("%zu trailing bytes", reader.remaining()));
  }
  return Status::OK();
}

/// Walks the v2 header and sections, CRC-validating every body; invokes
/// the per-section decoders only when `engine` is non-null.
Status DecodeCheckpointBinaryImpl(std::string_view bytes,
                                  const std::string& path,
                                  std::uint64_t* applied_seq,
                                  trust::TrustEngine* engine) {
  BinaryReader reader(bytes);
  std::uint8_t format = 0;
  std::string_view magic;
  std::uint32_t section_count = 0;
  std::uint32_t header_crc = 0;
  if (!reader.ReadU8(&format) ||
      !reader.ReadView(kBinaryMagicBytes, &magic) ||
      !reader.ReadU64(applied_seq) || !reader.ReadU32(&section_count) ||
      !reader.ReadU32(&header_crc)) {
    return HeaderCorruption(
        path, StrFormat("truncated binary header (%zu of %zu bytes)",
                        bytes.size(), kBinaryHeaderBytes));
  }
  if (magic != std::string_view(kBinaryMagic, kBinaryMagicBytes)) {
    return HeaderCorruption(path, "bad binary magic");
  }
  if (Crc32cMask(Crc32c(bytes.substr(0, kBinaryHeaderBytes - 4))) !=
      header_crc) {
    return HeaderCorruption(path, "header CRC mismatch (bit rot?)");
  }
  if (section_count != kCheckpointSectionCount) {
    // v2 holds exactly the five known sections; a different count is a
    // format this reader does not speak (or a flipped header byte).
    return HeaderCorruption(
        path, StrFormat("section count %u, expected %zu", section_count,
                        kCheckpointSectionCount));
  }
  for (std::size_t i = 0; i < kCheckpointSectionCount; ++i) {
    const auto expected = static_cast<CheckpointSection>(i + 1);
    std::uint8_t id = 0;
    std::uint64_t body_len = 0;
    std::uint32_t stored_crc = 0;
    if (!reader.ReadU8(&id) || !reader.ReadU64(&body_len) ||
        !reader.ReadU32(&stored_crc)) {
      return SectionCorruption(path, expected,
                               "truncated section header");
    }
    if (id != static_cast<std::uint8_t>(expected)) {
      return SectionCorruption(
          path, expected,
          StrFormat("section id %u out of order (expected %u)", id,
                    static_cast<unsigned>(expected)));
    }
    std::string_view body;
    if (!reader.ReadView(body_len, &body)) {
      return SectionCorruption(
          path, expected,
          StrFormat("declares %llu body bytes but only %zu remain "
                    "(torn checkpoint?)",
                    static_cast<unsigned long long>(body_len),
                    reader.remaining()));
    }
    if (Crc32cMask(Crc32c(body)) != stored_crc) {
      return SectionCorruption(path, expected, "CRC mismatch (bit rot?)");
    }
    if (engine == nullptr) continue;
    switch (expected) {
      case CheckpointSection::kCatalog:
        SIOT_RETURN_IF_ERROR(DecodeCatalogSection(body, path, engine));
        break;
      case CheckpointSection::kThresholds:
        SIOT_RETURN_IF_ERROR(DecodeThresholdsSection(body, path, engine));
        break;
      case CheckpointSection::kEnv:
        SIOT_RETURN_IF_ERROR(DecodeEnvSection(body, path, engine));
        break;
      case CheckpointSection::kUsage:
        SIOT_RETURN_IF_ERROR(DecodeUsageSection(body, path, engine));
        break;
      case CheckpointSection::kRecords:
        SIOT_RETURN_IF_ERROR(DecodeRecordsSection(body, path, engine));
        break;
    }
  }
  if (reader.remaining() != 0) {
    return HeaderCorruption(
        path, StrFormat("%zu trailing bytes past the last section",
                        reader.remaining()));
  }
  return Status::OK();
}

Status DecodeCheckpointImpl(std::string_view bytes, const std::string& path,
                            std::uint64_t* applied_seq,
                            trust::TrustEngine* engine) {
  if (bytes.empty()) {
    return HeaderCorruption(path, "empty checkpoint file");
  }
  if (engine != nullptr && (engine->catalog().size() != 0 ||
                            engine->store().size() != 0)) {
    return Status::FailedPrecondition(
        "checkpoint restore requires a freshly constructed engine");
  }
  if (CheckpointFormat(bytes) == kCheckpointFormatBinary) {
    return DecodeCheckpointBinaryImpl(bytes, path, applied_seq, engine);
  }
  const auto first = static_cast<unsigned char>(bytes.front());
  if (first < 0x20 || first >= 0x7F) {
    // Neither the binary version byte nor printable ASCII opening the v1
    // text magic: a format this reader does not speak, or a flipped
    // first byte.
    return HeaderCorruption(
        path, StrFormat("unknown format byte 0x%02x", first));
  }
  return DecodeCheckpointTextImpl(bytes, path, applied_seq, engine);
}

}  // namespace

// ----------------------------------------------------------- dispatch --

std::uint8_t CheckpointFormat(std::string_view bytes) {
  return !bytes.empty() && static_cast<unsigned char>(bytes.front()) ==
                               kCheckpointFormatBinary
             ? kCheckpointFormatBinary
             : kCheckpointFormatText;
}

StatusOr<CheckpointInfo> ValidateCheckpoint(std::string_view bytes,
                                            const std::string& path) {
  CheckpointInfo info;
  info.format = CheckpointFormat(bytes);
  SIOT_RETURN_IF_ERROR(
      DecodeCheckpointImpl(bytes, path, &info.applied_seq, nullptr));
  return info;
}

Status DecodeCheckpoint(std::string_view bytes, const std::string& path,
                        std::uint64_t* applied_seq,
                        trust::TrustEngine* engine) {
  if (engine == nullptr) {
    return Status::InvalidArgument("null engine");
  }
  return DecodeCheckpointImpl(bytes, path, applied_seq, engine);
}

}  // namespace siot::service
