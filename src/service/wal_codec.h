// Copyright 2026 The siot-trust Authors.
// Versioned WAL payload codec: the ONE place that knows how a logged
// trust-model mutation is spelled as bytes.
//
// Two payload formats share the frame layer (persistence.h keeps the
// [len][crc][seq] framing byte-identical across versions):
//
//   v1 (text)    single-line ops reusing the engine-state serialization
//                idioms (ids, %.17g doubles, percent-escaped names):
//                  outcome <trustor> <trustee> <task> <success> <gain>
//                          <damage> <cost> <abusive> <n> <intermediate>...
//                  task <name> <n_characteristics> <characteristic>...
//                  theta <trustee> <task|*> <value>
//                  env <agent> <indicator>
//                Every payload starts with a printable-ASCII op word, so
//                the first byte doubles as the format discriminator.
//   v2 (binary)  fixed little-endian fields behind a two-byte prologue
//                [version 0x02][op kind]; doubles are raw IEEE-754 bit
//                patterns (exact round trip — recovery and the admin
//                reconciliation compare replayed state by equality, so
//                the codec must never lose a bit), names are
//                length-prefixed raw bytes (no escaping), agent/task ids
//                are u32 with the kNoAgent/kNoTask sentinels representing
//                themselves. Op layouts (after the prologue):
//                  outcome  u32 trustor, u32 trustee, u32 task,
//                           u8 flags (bit0 success, bit1 abusive),
//                           f64 gain, f64 damage, f64 cost,
//                           u32 n, u32 intermediate × n
//                  task     u32 name_len, name bytes,
//                           u16 n, u8 characteristic × n
//                  theta    u32 trustee, u32 task, f64 theta
//                  env      u32 agent, f64 indicator
//
// DecodeAnyVersion dispatches on the first payload byte (0x02 = binary;
// printable ASCII = v1 text), so a WAL whose prefix predates the binary
// format — or a directory written entirely by a v1 service — replays
// with no migration step, frame by frame. Encoders for BOTH formats stay
// exported: the service writes v2, the mixed-version compatibility tests
// and benches write v1 deliberately.
//
// Decoding validates everything intrinsic to the payload (field shapes,
// sentinel ids, non-finite values, out-of-range indicators) and returns
// Corruption on any violation; checks that need engine state (task
// registered in the catalog, duplicate task names) stay with ApplyWalOp
// in persistence.cc.

#ifndef SIOT_SERVICE_WAL_CODEC_H_
#define SIOT_SERVICE_WAL_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "trust/types.h"
#include "trust/update.h"

namespace siot::service {

/// WAL payload format versions. v2's leading byte is the version number
/// itself; v1 is implied by a printable-ASCII first byte (all v1 ops
/// start with a lowercase op word).
inline constexpr std::uint8_t kWalFormatText = 1;
inline constexpr std::uint8_t kWalFormatBinary = 2;

/// Binary op kind, the second prologue byte of a v2 payload.
enum class WalOpKind : std::uint8_t {
  kOutcome = 1,
  kTask = 2,
  kTheta = 3,
  kEnv = 4,
};

/// One decoded WAL op, format-independent. Which fields are meaningful
/// depends on `kind`; the rest keep their defaults.
struct WalOp {
  WalOpKind kind = WalOpKind::kOutcome;
  // kOutcome
  trust::AgentId trustor = trust::kNoAgent;
  trust::AgentId trustee = trust::kNoAgent;  ///< Also kTheta's trustee.
  trust::TaskId task = trust::kNoTask;       ///< Also kTheta's task.
  trust::DelegationOutcome outcome;
  bool trustor_was_abusive = false;
  std::vector<trust::AgentId> intermediates;
  // kTask
  std::string name;
  std::vector<trust::CharacteristicId> characteristics;
  // kTheta (threshold) / kEnv (indicator); kEnv's agent is `trustor`.
  double value = 0.0;
};

// ------------------------------------------------------- v1 encoders --

std::string EncodeOutcomeOp(trust::AgentId trustor, trust::AgentId trustee,
                            trust::TaskId task,
                            const trust::DelegationOutcome& outcome,
                            bool trustor_was_abusive,
                            const std::vector<trust::AgentId>& intermediates);
std::string EncodeTaskOp(
    const std::string& name,
    const std::vector<trust::CharacteristicId>& characteristics);
std::string EncodeThetaOp(trust::AgentId trustee, trust::TaskId task,
                          double theta);
std::string EncodeEnvOp(trust::AgentId agent, double indicator);

// ------------------------------------------------------- v2 encoders --

std::string EncodeOutcomeOpBinary(
    trust::AgentId trustor, trust::AgentId trustee, trust::TaskId task,
    const trust::DelegationOutcome& outcome, bool trustor_was_abusive,
    const std::vector<trust::AgentId>& intermediates);
std::string EncodeTaskOpBinary(
    const std::string& name,
    const std::vector<trust::CharacteristicId>& characteristics);
std::string EncodeThetaOpBinary(trust::AgentId trustee, trust::TaskId task,
                                double theta);
std::string EncodeEnvOpBinary(trust::AgentId agent, double indicator);

/// The format version `payload` claims (kWalFormatBinary for a leading
/// 0x02, kWalFormatText otherwise — text never needs a marker).
std::uint8_t WalPayloadFormat(std::string_view payload);

/// True when `first_byte` can begin a payload of ANY known format: the
/// binary version byte, or printable ASCII opening a v1 text op. The
/// frame decoder consults this BEFORE paying for the CRC, so a reader
/// can classify a frame from a future (or trashed) format as corrupt
/// without a checksum pass.
bool IsKnownWalFormatByte(unsigned char first_byte);

/// Decodes a payload of either format into a WalOp. Corruption on any
/// intrinsic violation; never inspects engine state.
StatusOr<WalOp> DecodeAnyVersion(std::string_view payload);

/// Corruption status naming the offending payload (snippet-escaped);
/// shared by the codec and ApplyWalOp's engine-dependent checks so every
/// op-level corruption reads the same.
Status WalOpCorruption(std::string_view payload, const std::string& what);

}  // namespace siot::service

#endif  // SIOT_SERVICE_WAL_CODEC_H_
