// Copyright 2026 The siot-trust Authors.

#include "service/replication.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <limits>
#include <utility>

#include "common/file_util.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "service/checkpoint_codec.h"

namespace siot::service {

namespace {

/// pread [offset, end) of `fd` into a string; a short result means the
/// file shrank (or an append is mid-flight) — the caller's frame decode
/// handles whatever prefix arrived.
StatusOr<std::string> ReadRange(int fd, std::uint64_t offset,
                                std::uint64_t end, const std::string& path) {
  std::string bytes(static_cast<std::size_t>(end - offset), '\0');
  std::size_t got = 0;
  while (got < bytes.size()) {
    const ::ssize_t n =
        ::pread(fd, bytes.data() + got, bytes.size() - got,
                static_cast<::off_t>(offset + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("cannot read WAL", path));
    }
    if (n == 0) {
      bytes.resize(got);
      break;
    }
    got += static_cast<std::size_t>(n);
  }
  return bytes;
}

Status ValidateAgent(trust::AgentId agent, const char* role) {
  if (agent == trust::kNoAgent) {
    return Status::InvalidArgument(std::string(role) +
                                   " is the kNoAgent sentinel");
  }
  return Status::OK();
}

Status ReadOnly(const char* what) {
  return Status::FailedPrecondition(
      std::string("replica is read-only: ") + what +
      " must go to the leader (or Promote() this follower first)");
}

}  // namespace

ReplicaService::ReplicaService(const TrustServiceConfig& config,
                               const ReplicaOptions& options)
    : config_(config), options_(options) {
  config_.shard_count = std::max<std::size_t>(config.shard_count, 1);
  shards_.reserve(config_.shard_count);
  for (std::size_t s = 0; s < config_.shard_count; ++s) {
    auto shard = std::make_unique<ReplicaShard>();
    {
      // Pre-concurrency, but the guarded write stays provable (and the
      // lock is uncontended here).
      const WriterLock lock(&shard->mutex);
      shard->engine = std::make_unique<trust::TrustEngine>(config_.engine);
    }
    shard->wal_path = ShardWalPath(options_.directory, s);
    shard->checkpoint_path = ShardCheckpointPath(options_.directory, s);
    shards_.push_back(std::move(shard));
  }
}

ReplicaService::~ReplicaService() {
  StopRebuildThread();
  StopPollThread();
  // Both background threads are joined; the locks below are uncontended
  // and keep the guarded fd reads provable.
  for (const auto& shard_ptr : shards_) {
    ReplicaShard& shard = *shard_ptr;
    const WriterLock lock(&shard.mutex);
    if (shard.fd >= 0) ::close(shard.fd);
  }
}

StatusOr<std::unique_ptr<ReplicaService>> ReplicaService::Open(
    const TrustServiceConfig& config, const ReplicaOptions& options) {
  if (options.directory.empty()) {
    return Status::InvalidArgument("replica directory is empty");
  }
  const std::string manifest_path = ManifestPath(options.directory);
  if (!FileExists(manifest_path)) {
    return Status::FailedPrecondition(
        "directory " + options.directory +
        " has no manifest — a replica follows a directory a leader "
        "initialized; it never creates one");
  }
  std::unique_ptr<ReplicaService> replica(
      new ReplicaService(config, options));
  SIOT_ASSIGN_OR_RETURN(const std::string existing,
                        ReadFileToString(manifest_path));
  if (existing !=
      BuildServiceManifest(replica->shards_.size(), replica->config_)) {
    return Status::InvalidArgument(
        "directory " + options.directory +
        " was created under a different service configuration (shard "
        "count or engine config); a replica replaying under it would "
        "silently diverge");
  }
  // Restore the latest per-shard checkpoint, then catch up the WAL tails.
  for (auto& shard_ptr : replica->shards_) {
    ReplicaShard& shard = *shard_ptr;
    if (!FileExists(shard.checkpoint_path)) continue;
    const WriterLock lock(&shard.mutex);
    SIOT_RETURN_IF_ERROR(replica->RewindLocked(
        shard, /*require_newer=*/false, "initial checkpoint restore"));
  }
  if (const auto polled = replica->PollAll(); !polled.ok()) {
    return polled.status();
  }
  if (options.poll_period.count() > 0) replica->StartPollThread();
  if (options.overlay_graph != nullptr) {
    SIOT_RETURN_IF_ERROR(replica->overlay_.Configure(
        options.overlay_graph, options.transitivity));
    if (options.snapshot_rebuild_period.count() > 0) {
      replica->StartRebuildThread();
    }
  }
  return replica;
}

// -------------------------------------------------------------- tailing --

Status ReplicaService::CheckServing() const {
  if (promoted_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "this replica was promoted; its engines are frozen — use the "
        "TrustService returned by Promote()");
  }
  return Status::OK();
}

bool ReplicaService::CheckpointReplacedLocked(
    const ReplicaShard& shard) const {
  struct ::stat st;
  if (::stat(shard.checkpoint_path.c_str(), &st) != 0) return false;
  if (!shard.checkpoint_loaded) return true;
  return static_cast<std::uint64_t>(st.st_ino) != shard.checkpoint_ino ||
         static_cast<std::uint64_t>(st.st_size) != shard.checkpoint_bytes;
}

Status ReplicaService::RewindLocked(ReplicaShard& shard, bool require_newer,
                                    const std::string& why) {
  if (!FileExists(shard.checkpoint_path)) {
    return Status::Corruption(StrFormat(
        "WAL %s: %s, and no checkpoint exists to explain it — only a "
        "checkpoint truncation may rewind a WAL",
        shard.wal_path.c_str(), why.c_str()));
  }
  // Record the file identity BEFORE reading: if yet another checkpoint
  // replaces it mid-read we may load the newer bytes under the older
  // identity, which only means one harmless re-rewind later.
  struct ::stat st;
  const bool have_stat = ::stat(shard.checkpoint_path.c_str(), &st) == 0;
  // Validate-only first: most checkpoint replacements land at the seq
  // this follower already applied through the WAL, so the (possibly
  // large) engine restore below is usually skipped — the codec walk here
  // just proves the checksums and yields the seq. Readers see either the
  // old or the new checkpoint across the leader's atomic replace, never
  // a mix.
  SIOT_ASSIGN_OR_RETURN(const std::string bytes,
                        ReadFileToString(shard.checkpoint_path));
  SIOT_ASSIGN_OR_RETURN(const CheckpointInfo info,
                        ValidateCheckpoint(bytes, shard.checkpoint_path));
  const std::uint64_t seq = info.applied_seq;
  if (require_newer && shard.checkpoint_loaded &&
      seq <= shard.checkpoint_seq) {
    return Status::Corruption(StrFormat(
        "WAL %s: %s, and the checkpoint did not advance (still at seq "
        "%llu) — this is interior corruption, not a truncation race",
        shard.wal_path.c_str(), why.c_str(),
        static_cast<unsigned long long>(seq)));
  }
  if (seq < shard.applied_seq) {
    return Status::Corruption(StrFormat(
        "checkpoint %s rewound to seq %llu behind this follower's "
        "applied seq %llu — the leader's history went backwards",
        shard.checkpoint_path.c_str(),
        static_cast<unsigned long long>(seq),
        static_cast<unsigned long long>(shard.applied_seq)));
  }
  if (seq > shard.applied_seq) {
    // The checkpoint is ahead of us: everything we applied (and more) is
    // folded in. Jump the engine forward wholesale.
    auto fresh = std::make_unique<trust::TrustEngine>(config_.engine);
    std::uint64_t decoded_seq = 0;
    SIOT_RETURN_IF_ERROR(DecodeCheckpoint(bytes, shard.checkpoint_path,
                                          &decoded_seq, fresh.get()));
    shard.engine = std::move(fresh);
    shard.applied_seq = seq;
  }
  // seq == applied_seq keeps the engine: the replay path made our state
  // byte-identical to what the leader checkpointed at this seq.
  shard.checkpoint_seq = seq;
  shard.checkpoint_loaded = true;
  if (have_stat) {
    shard.checkpoint_ino = static_cast<std::uint64_t>(st.st_ino);
    shard.checkpoint_bytes = static_cast<std::uint64_t>(st.st_size);
  }
  shard.read_offset = 0;
  shard.torn_pending = false;
  return Status::OK();
}

StatusOr<std::size_t> ReplicaService::PollShardLocked(ReplicaShard& shard) {
  const std::size_t limit = options_.max_frames_per_poll == 0
                                ? std::numeric_limits<std::size_t>::max()
                                : options_.max_frames_per_poll;
  std::size_t applied = 0;
  for (;;) {
    if (shard.fd < 0) {
      shard.fd = ::open(shard.wal_path.c_str(), O_RDONLY);
      if (shard.fd < 0) {
        if (errno == ENOENT) return applied;  // Leader not started yet.
        return Status::IoError(
            ErrnoMessage("cannot open WAL", shard.wal_path));
      }
    }
    struct ::stat st;
    if (::fstat(shard.fd, &st) != 0) {
      return Status::IoError(ErrnoMessage("cannot stat WAL",
                                          shard.wal_path));
    }
    const auto size = static_cast<std::uint64_t>(st.st_size);
    shard.wal_bytes_seen = size;
    if (size < shard.read_offset) {
      // The WAL shrank under us: the leader checkpointed and truncated.
      SIOT_RETURN_IF_ERROR(RewindLocked(
          shard, /*require_newer=*/false,
          StrFormat("file shrank from %llu to %llu bytes",
                    static_cast<unsigned long long>(shard.read_offset),
                    static_cast<unsigned long long>(size))));
      continue;
    }
    if (size == shard.read_offset) {
      // No new bytes — but state can advance through a checkpoint alone
      // when the truncated WAL lands exactly back at our offset
      // (typically both zero). The replaced checkpoint file is the
      // tell; otherwise we are caught up.
      if (CheckpointReplacedLocked(shard)) {
        SIOT_RETURN_IF_ERROR(RewindLocked(
            shard, /*require_newer=*/false,
            "a new checkpoint replaced the loaded one with no new WAL "
            "bytes"));
        continue;
      }
      shard.torn_pending = false;
      return applied;
    }
    SIOT_ASSIGN_OR_RETURN(
        const std::string bytes,
        ReadRange(shard.fd, shard.read_offset, size, shard.wal_path));
    std::size_t offset = 0;
    bool torn = false;
    bool corrupt = false;
    Status failure;
    while (offset < bytes.size()) {
      if (applied >= limit) break;
      WalEntry entry;
      std::size_t frame_bytes = 0;
      std::string error;
      const WalFrameDecode decoded = DecodeWalFrame(
          std::string_view(bytes).substr(offset), &entry, &frame_bytes,
          &error);
      if (decoded == WalFrameDecode::kTorn) {
        torn = true;
        break;
      }
      if (decoded == WalFrameDecode::kCorrupt) {
        corrupt = true;
        failure = Status::Corruption(StrFormat(
            "WAL %s: %s at byte %llu", shard.wal_path.c_str(),
            error.c_str(),
            static_cast<unsigned long long>(shard.read_offset + offset)));
        break;
      }
      if (entry.seq <= shard.applied_seq) {
        // Already folded in (re-scan after a rewind); skip, never
        // re-apply.
        offset += frame_bytes;
        continue;
      }
      if (entry.seq != shard.applied_seq + 1) {
        corrupt = true;
        failure = Status::Corruption(StrFormat(
            "WAL %s: sequence jumped from %llu to %llu at byte %llu",
            shard.wal_path.c_str(),
            static_cast<unsigned long long>(shard.applied_seq),
            static_cast<unsigned long long>(entry.seq),
            static_cast<unsigned long long>(shard.read_offset + offset)));
        break;
      }
      // A CRC-valid frame with an invalid payload can never be a stale
      // read (the CRC covers seq + payload) — apply errors are final.
      SIOT_RETURN_IF_ERROR(ApplyWalOp(entry.payload, shard.engine.get()));
      shard.applied_seq = entry.seq;
      ++applied;
      offset += frame_bytes;
    }
    shard.read_offset += offset;
    shard.torn_pending = torn;
    if (corrupt) {
      // One legitimate explanation remains: the leader checkpointed and
      // truncated between our fstat and pread, so these bytes came from
      // a stale offset inside NEW frames. That is provable — a newer
      // checkpoint must exist. Otherwise the corruption stands.
      SIOT_RETURN_IF_ERROR(RewindLocked(shard, /*require_newer=*/true,
                                        failure.message()));
      continue;
    }
    if (torn && CheckpointReplacedLocked(shard)) {
      // Stale-offset garbage after a truncation can also masquerade as
      // a TORN frame (a plausible length field pointing past EOF).
      // Waiting would stall forever if the leader went idle — but the
      // replaced checkpoint proves a truncation happened, so rewind
      // through it instead of waiting.
      SIOT_RETURN_IF_ERROR(RewindLocked(
          shard, /*require_newer=*/false,
          "torn bytes at an offset predating a newer checkpoint"));
      continue;
    }
    return applied;
  }
}

StatusOr<std::size_t> ReplicaService::PollAll() {
  SIOT_RETURN_IF_ERROR(CheckServing());
  {
    const MutexLock lock(&poll_mutex_);
    if (!tail_status_.ok()) return tail_status_;
  }
  std::size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    ReplicaShard& shard = *shard_ptr;
    const WriterLock lock(&shard.mutex);
    const auto polled = PollShardLocked(shard);
    if (!polled.ok()) {
      // poll_mutex_ nests UNDER the shard lock here — shard.mutex is
      // rank 2, poll_mutex_ rank 3 (see the member's comment).
      const MutexLock g(&poll_mutex_);
      if (tail_status_.ok()) tail_status_ = polled.status();
      return polled.status();
    }
    total += polled.value();
  }
  return total;
}

Status ReplicaService::AwaitPositions(
    std::span<const ShardWalPosition> targets,
    std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  // With a background tailer we only watch its progress; without one,
  // this call drives the polls itself.
  const bool drive = options_.poll_period.count() == 0;
  for (;;) {
    if (drive) {
      if (const auto polled = PollAll(); !polled.ok()) {
        return polled.status();
      }
    } else if (Status tail = TailStatus(); !tail.ok()) {
      return tail;
    }
    bool reached = true;
    for (const ShardWalPosition& target : targets) {
      if (target.shard >= shards_.size()) {
        return Status::InvalidArgument(
            StrFormat("target shard %zu out of range (%zu shards)",
                      target.shard, shards_.size()));
      }
      const ReplicaShard& shard = *shards_[target.shard];
      const ReaderLock lock(&shard.mutex);
      if (shard.applied_seq < target.last_seq) {
        reached = false;
        break;
      }
    }
    if (reached) return Status::OK();
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::Unavailable(StrFormat(
          "follower did not reach the leader's WAL positions within "
          "%lld ms",
          static_cast<long long>(timeout.count())));
    }
    std::this_thread::sleep_for(std::chrono::microseconds(drive ? 200
                                                                : 1000));
  }
}

Status ReplicaService::TailStatus() const {
  const MutexLock lock(&poll_mutex_);
  return tail_status_;
}

std::vector<ShardReplicationLag> ReplicaService::ReplicationLag() const {
  std::vector<ShardReplicationLag> lags;
  lags.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const ReplicaShard& shard = *shards_[s];
    const ReaderLock lock(&shard.mutex);
    ShardReplicationLag lag;
    lag.shard = s;
    lag.applied_seq = shard.applied_seq;
    lag.visible_seq = shard.applied_seq;
    lag.read_offset = shard.read_offset;
    lag.torn_tail = shard.torn_pending;
    struct ::stat st;
    if (::stat(shard.wal_path.c_str(), &st) == 0) {
      lag.wal_bytes = static_cast<std::uint64_t>(st.st_size);
    }
    if (lag.wal_bytes > lag.read_offset) {
      lag.byte_lag = lag.wal_bytes - lag.read_offset;
      // Decode (without applying) the unconsumed region to count the
      // complete frames a poll would fold in right now. Advisory and
      // O(lag bytes) — callers polling a deeply lagging follower should
      // prefer byte_lag alone. Reuses the tailing descriptor (pread is
      // position-less and the fd, once opened, never changes).
      const int fd = shard.fd >= 0
                         ? shard.fd
                         : ::open(shard.wal_path.c_str(), O_RDONLY);
      if (fd >= 0) {
        const auto bytes =
            ReadRange(fd, lag.read_offset, lag.wal_bytes, shard.wal_path);
        if (fd != shard.fd) ::close(fd);
        if (bytes.ok()) {
          std::string_view rest(bytes.value());
          WalEntry entry;
          std::size_t frame_bytes = 0;
          while (DecodeWalFrame(rest, &entry, &frame_bytes, nullptr) ==
                 WalFrameDecode::kFrame) {
            if (entry.seq > lag.visible_seq) lag.visible_seq = entry.seq;
            rest = rest.substr(frame_bytes);
          }
        }
      }
      lag.seq_lag = lag.visible_seq - lag.applied_seq;
    }
    lags.push_back(lag);
  }
  return lags;
}

// ----------------------------------------- transitive read surface --

const trust::TrustEngine& ReplicaService::EngineOfShardAllLocked(
    const ReplicaShard& shard) const {
  // Provably held: only called under BuildOverlaySnapshot's
  // MultiReaderLock, which holds every shard's shared lock. The dynamic
  // lock set is opaque to the thread-safety analysis, so each access
  // re-asserts the one capability it needs in straight-line code.
  shard.mutex.AssertReaderHeld();
  return *shard.engine;
}

std::uint64_t ReplicaService::AppliedSeqOfShardAllLocked(
    const ReplicaShard& shard) const {
  shard.mutex.AssertReaderHeld();
  return shard.applied_seq;
}

Status ReplicaService::BuildOverlaySnapshot() {
  SIOT_RETURN_IF_ERROR(CheckServing());
  const std::shared_ptr<const graph::Graph> graph = overlay_.graph();
  if (graph == nullptr) {
    return Status::FailedPrecondition(
        "transitive serving not enabled (set "
        "ReplicaOptions::overlay_graph)");
  }
  // One assembly at a time (owner-driven rebuilds can race the
  // background thread); queries are untouched by this mutex.
  const MutexLock build_lock(&build_mutex_);
  const auto assembly_start = std::chrono::steady_clock::now();
  std::shared_ptr<const trust::VersionedOverlaySnapshot> built;
  {
    // Freeze ONE consistent cut: all shard shared locks held
    // simultaneously for the whole assembly + version stamp. The tailer
    // applies frames under per-shard EXCLUSIVE locks one shard at a
    // time, so per-shard reads at different times could stamp an
    // applied_seq vector no single moment of this follower ever was in
    // (e.g. an admin write — replicated shard by shard — half-applied).
    // Holding the read locks stalls only this follower's tailer for the
    // assembly (bounded extra staleness); the LEADER's shard locks are
    // never taken. Deadlock-free: the tailer and the read surface hold
    // at most one shard lock at a time, and acquisition here is in
    // fixed index order (MultiReaderLock's class comment carries the
    // full argument). Guarded reads under the dynamic lock set go
    // through the *AllLocked helpers, which re-assert the one shard
    // capability each access needs.
    std::vector<SharedMutex*> mutexes;
    mutexes.reserve(shards_.size());
    for (const auto& shard : shards_) mutexes.push_back(&shard->mutex);
    const MultiReaderLock all_shards(std::move(mutexes));
    std::vector<const trust::TrustStore*> stores;
    trust::SnapshotVersion version;
    stores.reserve(shards_.size());
    version.applied_seq.reserve(shards_.size());
    for (const auto& shard : shards_) {
      stores.push_back(&EngineOfShardAllLocked(*shard).store());
      version.applied_seq.push_back(AppliedSeqOfShardAllLocked(*shard));
    }
    // Admin state replicates to shard 0 first, so its catalog is the
    // most complete; a task some other shard has not applied yet cannot
    // have records there either (registration precedes use in every
    // shard's WAL order).
    const trust::ShardedStoreOverlay source(
        std::move(stores), EngineOfShardAllLocked(*shards_[0]).normalizer(),
        [count = shards_.size()](trust::AgentId trustor) {
          return ShardIndexForTrustor(trustor, count);
        });
    built = std::make_shared<trust::VersionedOverlaySnapshot>(
        graph, EngineOfShardAllLocked(*shards_[0]).catalog(), source,
        std::move(version));
  }  // Locks drop here; hop-cache preparation below runs lock-free.
  const auto assembly_cost =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - assembly_start);
  return overlay_.Publish(std::move(built), assembly_cost);
}

StatusOr<TransitiveTrustResult> ReplicaService::TransitiveTrust(
    const TransitiveTrustRequest& request) const {
  SIOT_RETURN_IF_ERROR(CheckServing());
  return overlay_.Query(request);
}

StatusOr<std::vector<TransitiveTrustResult>>
ReplicaService::BatchTransitiveTrust(
    std::span<const TransitiveTrustRequest> requests) const {
  SIOT_RETURN_IF_ERROR(CheckServing());
  return overlay_.BatchQuery(requests);
}

Status ReplicaService::OverlayRebuildStatus() const {
  const MutexLock lock(&rebuild_mutex_);
  return rebuild_status_;
}

void ReplicaService::StartRebuildThread() {
  rebuild_thread_ = std::thread([this] {
    for (;;) {
      {
        const MutexLock lock(&rebuild_mutex_);
        if (rebuild_stopping_) return;
      }
      // The build runs with rebuild_mutex_ RELEASED: it takes
      // build_mutex_ and every shard lock, both of which rank above it.
      const Status built = BuildOverlaySnapshot();
      {
        MutexLock lock(&rebuild_mutex_);
        if (!built.ok()) {
          // Keep serving the previous snapshot; record the failure for
          // monitoring and keep trying (unlike a poisoned WAL tail, a
          // rebuild failure is not necessarily permanent).
          rebuild_status_ = built;
          SIOT_LOG_WARN("overlay snapshot rebuild failed: %s",
                        built.ToString().c_str());
        } else {
          rebuild_status_ = Status::OK();
        }
        const auto deadline = std::chrono::steady_clock::now() +
                              options_.snapshot_rebuild_period;
        while (!rebuild_stopping_) {
          if (!rebuild_cv_.WaitUntil(rebuild_mutex_, deadline)) break;
        }
        if (rebuild_stopping_) return;
      }
    }
  });
}

void ReplicaService::StopRebuildThread() {
  {
    const MutexLock lock(&rebuild_mutex_);
    rebuild_stopping_ = true;
  }
  rebuild_cv_.NotifyAll();
  if (rebuild_thread_.joinable()) rebuild_thread_.join();
}

void ReplicaService::StartPollThread() {
  poll_thread_ = std::thread([this] {
    for (;;) {
      {
        // Deadline sleep, interruptible by StopPollThread; the predicate
        // is hand-rolled so the analysis sees the guarded `stopping_`
        // reads under the lock.
        MutexLock lock(&poll_mutex_);
        const auto deadline =
            std::chrono::steady_clock::now() + options_.poll_period;
        while (!stopping_) {
          if (!poll_cv_.WaitUntil(poll_mutex_, deadline)) break;
        }
        if (stopping_) return;
      }
      // PollAll runs with poll_mutex_ RELEASED: it takes shard locks,
      // which rank above it.
      const auto polled = PollAll();
      if (!polled.ok()) {
        // PollAll already made the status sticky; a poisoned tail will
        // never heal, so stop burning cycles. Reads keep serving.
        SIOT_LOG_WARN("replica tailing stopped: %s",
                      polled.status().ToString().c_str());
        return;
      }
    }
  });
}

void ReplicaService::StopPollThread() {
  {
    const MutexLock lock(&poll_mutex_);
    stopping_ = true;
  }
  poll_cv_.NotifyAll();
  if (poll_thread_.joinable()) poll_thread_.join();
}

// --------------------------------------------------------- read surface --

Status ReplicaService::ValidateTaskLocked(const ReplicaShard& shard,
                                          trust::TaskId task) const {
  if (static_cast<std::size_t>(task) >= shard.engine->catalog().size()) {
    return Status::InvalidArgument(
        "task id " + std::to_string(task) +
        " is not registered (or its registration has not replicated to "
        "this follower yet)");
  }
  return Status::OK();
}

StatusOr<double> ReplicaService::PreEvaluate(trust::AgentId trustor,
                                             trust::AgentId trustee,
                                             trust::TaskId task) const {
  SIOT_RETURN_IF_ERROR(CheckServing());
  SIOT_RETURN_IF_ERROR(ValidateAgent(trustor, "trustor"));
  SIOT_RETURN_IF_ERROR(ValidateAgent(trustee, "trustee"));
  pre_evaluations_.fetch_add(1, std::memory_order_relaxed);
  const ReplicaShard& shard =
      *shards_[ShardIndexForTrustor(trustor, shards_.size())];
  const ReaderLock lock(&shard.mutex);
  SIOT_RETURN_IF_ERROR(ValidateTaskLocked(shard, task));
  return shard.engine->PreEvaluate(trustor, trustee, task);
}

StatusOr<trust::DelegationRequestResult> ReplicaService::RequestDelegation(
    const DelegationServiceRequest& request) const {
  SIOT_RETURN_IF_ERROR(CheckServing());
  SIOT_RETURN_IF_ERROR(ValidateAgent(request.trustor, "trustor"));
  for (const trust::AgentId candidate : request.candidates) {
    SIOT_RETURN_IF_ERROR(ValidateAgent(candidate, "candidate"));
  }
  delegation_requests_.fetch_add(1, std::memory_order_relaxed);
  const ReplicaShard& shard =
      *shards_[ShardIndexForTrustor(request.trustor, shards_.size())];
  const ReaderLock lock(&shard.mutex);
  SIOT_RETURN_IF_ERROR(ValidateTaskLocked(shard, request.task));
  return shard.engine->RequestDelegation(request.trustor, request.task,
                                         request.candidates,
                                         request.self_estimates);
}

StatusOr<std::vector<double>> ReplicaService::BatchPreEvaluate(
    std::span<const PreEvaluateRequest> requests) const {
  SIOT_RETURN_IF_ERROR(CheckServing());
  for (const PreEvaluateRequest& request : requests) {
    SIOT_RETURN_IF_ERROR(ValidateAgent(request.trustor, "trustor"));
    SIOT_RETURN_IF_ERROR(ValidateAgent(request.trustee, "trustee"));
  }
  pre_evaluations_.fetch_add(requests.size(), std::memory_order_relaxed);
  std::vector<double> results(requests.size());
  std::vector<std::vector<std::size_t>> buckets(shards_.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    buckets[ShardIndexForTrustor(requests[i].trustor, shards_.size())]
        .push_back(i);
  }
  for (std::size_t s = 0; s < buckets.size(); ++s) {
    if (buckets[s].empty()) continue;
    const ReplicaShard& shard = *shards_[s];
    const ReaderLock lock(&shard.mutex);
    for (const std::size_t i : buckets[s]) {
      SIOT_RETURN_IF_ERROR(ValidateTaskLocked(shard, requests[i].task));
      results[i] = shard.engine->PreEvaluate(
          requests[i].trustor, requests[i].trustee, requests[i].task);
    }
  }
  return results;
}

TrustServiceStats ReplicaService::Stats() const {
  TrustServiceStats stats;
  stats.shard_count = shards_.size();
  stats.pre_evaluations = pre_evaluations_.load(std::memory_order_relaxed);
  stats.delegation_requests =
      delegation_requests_.load(std::memory_order_relaxed);
  for (const auto& shard_ptr : shards_) {
    const ReplicaShard& shard = *shard_ptr;
    const ReaderLock lock(&shard.mutex);
    stats.record_count += shard.engine->store().size();
    stats.pair_count += shard.engine->store().pair_count();
  }
  return stats;
}

// --------------------------------------------- rejected mutation surface --

Status ReplicaService::ReportOutcome(const OutcomeReport&) {
  return ReadOnly("ReportOutcome");
}

Status ReplicaService::BatchReportOutcome(std::span<const OutcomeReport>) {
  return ReadOnly("BatchReportOutcome");
}

StatusOr<trust::TaskId> ReplicaService::RegisterTask(
    const std::string&, const std::vector<trust::CharacteristicId>&) {
  return ReadOnly("RegisterTask");
}

Status ReplicaService::SetReverseThreshold(trust::AgentId, trust::TaskId,
                                           double) {
  return ReadOnly("SetReverseThreshold");
}

Status ReplicaService::SetEnvironmentIndicator(trust::AgentId, double) {
  return ReadOnly("SetEnvironmentIndicator");
}

// --------------------------------------------------------------- promote --

StatusOr<std::unique_ptr<TrustService>> ReplicaService::Promote(
    const PersistenceOptions& options) {
  SIOT_RETURN_IF_ERROR(CheckServing());
  if (options.directory != options_.directory) {
    return Status::InvalidArgument(
        "Promote options name directory " + options.directory +
        " but this replica follows " + options_.directory);
  }
  // Fence first: while the old leader lives it holds the LOCK and this
  // fails FailedPrecondition — a live leader must never be usurped.
  DirectoryLock fence;
  SIOT_RETURN_IF_ERROR(fence.Acquire(options_.directory));
  // The leader is dead and fenced out, so the WALs are static: finish
  // the tail. A trailing torn frame stays — it was never acknowledged,
  // and recovery below discards it exactly as a leader restart would.
  for (;;) {
    SIOT_ASSIGN_OR_RETURN(const std::size_t applied, PollAll());
    if (applied == 0) break;
  }
  // Come up writable over the replayed directory, inheriting the held
  // fence. Recovery re-derives the state this replica tailed to — the
  // promote test asserts the two are byte-identical, which is the
  // end-to-end proof that tailing replicates faithfully.
  //
  // The background tailer (if any) keeps running until Open succeeds: a
  // failed promote must leave a fully live replica (still tailing, no
  // sticky state), and concurrent tailing during recovery is safe — it
  // only reads files, and recovery's tail-truncation never cuts below
  // the follower's frame-aligned offset.
  SIOT_ASSIGN_OR_RETURN(std::unique_ptr<TrustService> promoted,
                        TrustService::Open(config_, options,
                                           std::move(fence)));
  promoted_.store(true, std::memory_order_release);
  StopPollThread();
  StopRebuildThread();
  return promoted;
}

}  // namespace siot::service
