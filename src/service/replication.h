// Copyright 2026 The siot-trust Authors.
// ReplicaService: a read-only follower of a durable TrustService, built
// on the observation that the per-shard WALs ARE a replication stream —
// CRC-framed, sequence-numbered, applied through a replay path that is
// provably byte-identical to the leader's in-memory state.
//
// The follower opens the leader's persistence directory (or a copied /
// streamed snapshot of it), restores the latest per-shard checkpoint,
// then TAILS each shard's WAL: every poll reads the frames appended past
// its applied sequence number, validates CRC and sequence continuity,
// and applies them through service::ApplyWalOp. The paper's workload is
// read-dominated — Eq. 4 inference and Eq. 23/24 delegation ranking are
// queries over accumulated direct experience — so a fleet of followers
// scales exactly the traffic that matters, and a follower that promotes
// on leader death is the availability story trust-resilient SIoT
// platforms need.
//
// Three hazards of tailing a live log, and how each is handled:
//
//   torn tail      the leader's append may be mid-flight when we read:
//                  the last frame's bytes stop before its declared
//                  length. WAIT — the bytes arrive on the next poll.
//                  Never treated as corruption (WalTailKind::kTorn vs
//                  kCorrupt is exactly this distinction).
//   truncation     the leader checkpointed: the WAL file shrank (or our
//   race           read offset now points into the middle of new
//                  frames, which decode as garbage). Detected by
//                  size < offset, a sequence gap, or a CRC failure WITH
//                  a newer checkpoint on disk — reload the checkpoint,
//                  rewind to offset 0, and resume; already-applied
//                  sequence numbers are skipped, so no frame is ever
//                  applied twice.
//   corruption     a complete frame whose CRC/length is invalid and no
//                  newer checkpoint explains it. HALT (sticky
//                  Corruption from TailStatus); reads keep serving the
//                  last consistent state, mutations were never accepted.
//
// Failover: Promote() fences the directory by acquiring the LOCK the
// old leader held (refused while the leader is alive), finishes the
// tail, and brings up a writable TrustService over the same directory —
// handing it the held fence so there is no window in which a third node
// could seize leadership. Every write the old leader acknowledged is in
// the WALs, so the promoted service serves them all: zero
// acknowledged-write loss.
//
// Thread safety: all public methods are safe to call concurrently; each
// shard has a shared_mutex (reads shared, tailing exclusive), mirroring
// TrustService.

#ifndef SIOT_SERVICE_REPLICATION_H_
#define SIOT_SERVICE_REPLICATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "graph/graph.h"
#include "service/overlay_serving.h"
#include "service/persistence.h"
#include "service/trust_service.h"
#include "trust/trust_engine.h"

namespace siot::service {

/// Follower configuration.
struct ReplicaOptions {
  /// The leader's persistence directory (or a copy of one). Must already
  /// hold a manifest — a replica never initializes a directory.
  std::string directory;
  /// Background tailing period (0 = no thread; the owner drives polls
  /// via PollAll / AwaitPositions).
  std::chrono::milliseconds poll_period{0};
  /// Apply at most this many frames per shard per PollAll call
  /// (0 = unlimited). Exists for the crash-during-catch-up tests, which
  /// need to stop a follower at precise mid-catch-up points.
  std::size_t max_frames_per_poll = 0;

  // --- follower-served transitive reads (null graph = disabled) ---

  /// Social graph for the §4.3 transitive read path (agent i = node i).
  /// When set, the follower can build versioned overlay snapshots over
  /// its replicated shards and answer TransitiveTrust queries.
  std::shared_ptr<const graph::Graph> overlay_graph;
  /// Search parameters for the served transitivity queries.
  trust::TransitivityParams transitivity;
  /// Background snapshot rebuild period (0 = no thread; the owner
  /// drives rebuilds via BuildOverlaySnapshot). The first build runs as
  /// soon as the thread starts.
  std::chrono::milliseconds snapshot_rebuild_period{0};
};

/// One shard's replication position, relative to what is on disk now.
struct ShardReplicationLag {
  std::size_t shard = 0;
  /// Last op sequence applied to this follower's engine.
  std::uint64_t applied_seq = 0;
  /// Last valid frame sequence visible in the WAL right now (>= applied
  /// unless the leader just checkpoint-truncated).
  std::uint64_t visible_seq = 0;
  /// visible_seq - applied_seq (0 when caught up).
  std::uint64_t seq_lag = 0;
  /// Current WAL file size on disk.
  std::uint64_t wal_bytes = 0;
  /// Byte offset this follower has consumed.
  std::uint64_t read_offset = 0;
  /// wal_bytes - read_offset (0 when caught up or just truncated).
  std::uint64_t byte_lag = 0;
  /// A partial frame is pending at the tail (an append in flight).
  bool torn_tail = false;
};

/// Read-only WAL-tailing follower; see file comment.
class ReplicaService {
 public:
  /// Opens a follower over `options.directory`. The directory must have
  /// been initialized by a leader under the SAME `config` (verified
  /// against the manifest; a follower replaying under a different engine
  /// config would silently diverge). Restores checkpoints, performs one
  /// initial catch-up poll, and starts the background tailing thread
  /// when `poll_period` is set. The leader may be live or dead; a
  /// follower never takes the directory LOCK.
  static StatusOr<std::unique_ptr<ReplicaService>> Open(
      const TrustServiceConfig& config, const ReplicaOptions& options);

  ~ReplicaService();
  ReplicaService(const ReplicaService&) = delete;
  ReplicaService& operator=(const ReplicaService&) = delete;

  // ----------------------------------------------------------- tailing --

  /// One tailing pass over every shard: applies all complete, in-sequence
  /// frames currently on disk (up to max_frames_per_poll) and returns how
  /// many were applied. A torn tail waits; a checkpoint-truncation
  /// rewind is handled transparently; genuine corruption returns (and
  /// stickies) Status Corruption.
  StatusOr<std::size_t> PollAll();

  /// Blocks until this follower's applied sequence reaches `targets`
  /// (from the leader's WalPositions barrier) on every listed shard, or
  /// `timeout` elapses (Unavailable). Drives polls itself when no
  /// background thread is running.
  Status AwaitPositions(std::span<const ShardWalPosition> targets,
                        std::chrono::milliseconds timeout);

  /// First corruption the tailer hit, if any (sticky; OK otherwise).
  /// A poisoned follower keeps serving its last consistent state.
  Status TailStatus() const;

  /// Per-shard sequence/byte lag against the directory's current
  /// contents. Advisory: the leader may append concurrently.
  std::vector<ShardReplicationLag> ReplicationLag() const;

  // -------------------------------------- transitive read surface --
  // THE production home of §4.3 transitive serving: the follower holds
  // every shard's replicated state, tolerates staleness by design, and
  // its rebuild holds only FOLLOWER shard locks — the leader's write
  // path is never touched. Answers carry the snapshot version (the
  // per-shard applied_seq vector) + age; OverlayInfo() reports the same
  // alongside ReplicationLag() for monitoring.

  /// Assembles + publishes a fresh overlay snapshot from the replicated
  /// shard stores. The applied_seq version vector is frozen under ONE
  /// simultaneous all-shard shared-lock hold — a consistent cut the
  /// tailer (which applies under per-shard exclusive locks) can never
  /// split. The expensive hop-cache preparation runs after the locks
  /// drop; readers of the previous snapshot never block.
  /// FailedPrecondition without ReplicaOptions::overlay_graph or after
  /// Promote().
  Status BuildOverlaySnapshot();

  /// Transitive trust query against the published snapshot.
  StatusOr<TransitiveTrustResult> TransitiveTrust(
      const TransitiveTrustRequest& request) const;

  /// Batched variant: whole-batch validation, atomic rejection, every
  /// answer from one snapshot.
  StatusOr<std::vector<TransitiveTrustResult>> BatchTransitiveTrust(
      std::span<const TransitiveTrustRequest> requests) const;

  /// Version/age/size of the served snapshot (built=false before the
  /// first successful build).
  OverlaySnapshotInfo OverlayInfo() const { return overlay_.Info(); }

  /// The served snapshot bundle (null before the first build).
  std::shared_ptr<const trust::VersionedOverlaySnapshot>
  CurrentOverlaySnapshot() const {
    return overlay_.CurrentSnapshot();
  }

  /// Last error of the background rebuild thread, if any (OK otherwise
  /// or when rebuilds are owner-driven). A failed rebuild keeps serving
  /// the previous snapshot.
  Status OverlayRebuildStatus() const;

  // ------------------------------------------------------ read surface --

  /// Pre-evaluation TW_X←Y(τ) (shared lock on the trustor's shard).
  StatusOr<double> PreEvaluate(trust::AgentId trustor,
                               trust::AgentId trustee,
                               trust::TaskId task) const;

  /// Delegation RANKING query: strategy-aware Eq. 23/24 ranking over the
  /// replicated estimates. Read-only (the engine call is const); the
  /// resulting delegation outcome must be reported to the LEADER.
  StatusOr<trust::DelegationRequestResult> RequestDelegation(
      const DelegationServiceRequest& request) const;

  /// Batched pre-evaluation, one lock acquisition per touched shard.
  StatusOr<std::vector<double>> BatchPreEvaluate(
      std::span<const PreEvaluateRequest> requests) const;

  TrustServiceStats Stats() const;
  std::size_t shard_count() const { return shards_.size(); }

  /// Direct engine access for tests and offline inspection. NOT
  /// synchronized — the caller must guarantee no concurrent use.
  /// Justified escape: the documented caller-synchronized test hook,
  /// same contract as TrustService::shard_engine.
  const trust::TrustEngine& shard_engine(std::size_t shard) const
      SIOT_NO_THREAD_SAFETY_ANALYSIS {
    return *shards_[shard]->engine;
  }

  // -------------------------------------- rejected mutation surface --
  // A follower is read-only: accepting a write would fork the WAL. All
  // of these return FailedPrecondition, mirroring the service API so a
  // router can address leaders and followers uniformly.

  Status ReportOutcome(const OutcomeReport& report);
  Status BatchReportOutcome(std::span<const OutcomeReport> reports);
  StatusOr<trust::TaskId> RegisterTask(
      const std::string& name,
      const std::vector<trust::CharacteristicId>& characteristics);
  Status SetReverseThreshold(trust::AgentId trustee, trust::TaskId task,
                             double theta);
  Status SetEnvironmentIndicator(trust::AgentId agent, double indicator);

  // ----------------------------------------------------------- failover --

  /// Takes over a dead leader's directory: acquires the directory LOCK
  /// (FailedPrecondition while the old leader still holds it — a live
  /// leader must never be usurped), finishes tailing the now-static
  /// WALs, and opens a writable TrustService over the directory under
  /// `options` (whose directory must match), handing it the held fence.
  /// Every acknowledged write of the old leader is served by the new
  /// one; an unacknowledged torn tail is discarded, exactly as leader
  /// crash recovery would. On success this replica stops serving
  /// (FailedPrecondition from every read) — its engines would silently
  /// go stale the moment the new leader accepts a write.
  StatusOr<std::unique_ptr<TrustService>> Promote(
      const PersistenceOptions& options);

 private:
  struct ReplicaShard {
    mutable SharedMutex mutex;
    /// The tailer's exclusive-apply path mutates the pointee; RewindLocked
    /// even reseats the pointer (checkpoint reload builds a fresh
    /// engine), so the POINTER is guarded too, unlike the leader's.
    std::unique_ptr<trust::TrustEngine> engine SIOT_GUARDED_BY(mutex);
    std::string wal_path;         ///< Set once at construction.
    std::string checkpoint_path;  ///< Set once at construction.
    /// Tailing descriptor (WAL inode survives truncation).
    int fd SIOT_GUARDED_BY(mutex) = -1;
    /// Bytes consumed, frame-aligned.
    std::uint64_t read_offset SIOT_GUARDED_BY(mutex) = 0;
    /// Last op folded into `engine`.
    std::uint64_t applied_seq SIOT_GUARDED_BY(mutex) = 0;
    /// applied_seq of loaded ckpt.
    std::uint64_t checkpoint_seq SIOT_GUARDED_BY(mutex) = 0;
    bool checkpoint_loaded SIOT_GUARDED_BY(mutex) = false;
    /// Identity (inode + size) of the loaded checkpoint file. Every
    /// leader checkpoint atomically replaces the file with a fresh
    /// inode, so a cheap stat detects "a checkpoint happened" even when
    /// the truncated WAL ends exactly at our read offset and the byte
    /// stream alone shows nothing new.
    std::uint64_t checkpoint_ino SIOT_GUARDED_BY(mutex) = 0;
    std::uint64_t checkpoint_bytes SIOT_GUARDED_BY(mutex) = 0;
    /// Last poll ended on a partial frame.
    bool torn_pending SIOT_GUARDED_BY(mutex) = false;
    /// Size at last poll, for lag.
    std::uint64_t wal_bytes_seen SIOT_GUARDED_BY(mutex) = 0;
  };

  ReplicaService(const TrustServiceConfig& config,
                 const ReplicaOptions& options);

  /// One tailing pass over one shard; caller holds the exclusive lock.
  StatusOr<std::size_t> PollShardLocked(ReplicaShard& shard)
      SIOT_REQUIRES(shard.mutex);

  /// Reloads the shard from the checkpoint on disk and rewinds the read
  /// offset to 0 (the truncation-race path). `require_newer` demands the
  /// checkpoint advanced past the one already loaded — the only way a
  /// decode failure is legitimately explained; otherwise it is corruption.
  Status RewindLocked(ReplicaShard& shard, bool require_newer,
                      const std::string& why) SIOT_REQUIRES(shard.mutex);

  /// True when the checkpoint file on disk is not the one this shard
  /// loaded (a leader checkpoint replaced it since).
  bool CheckpointReplacedLocked(const ReplicaShard& shard) const
      SIOT_REQUIRES_SHARED(shard.mutex);

  /// FailedPrecondition once Promote succeeded.
  Status CheckServing() const;

  /// InvalidArgument unless `task` is registered in `shard`'s replicated
  /// catalog; caller holds at least a shared lock on the shard.
  Status ValidateTaskLocked(const ReplicaShard& shard,
                            trust::TaskId task) const
      SIOT_REQUIRES_SHARED(shard.mutex);

  /// Guarded reads used by BuildOverlaySnapshot, whose MultiReaderLock
  /// holds EVERY shard's lock shared but as a dynamic set the analysis
  /// cannot track; each helper re-asserts the one capability its access
  /// needs (the assert-capability audit — see MultiReaderLock).
  const trust::TrustEngine& EngineOfShardAllLocked(
      const ReplicaShard& shard) const;
  std::uint64_t AppliedSeqOfShardAllLocked(const ReplicaShard& shard) const;

  void StartPollThread();
  void StopPollThread();
  void StartRebuildThread();
  void StopRebuildThread();

  TrustServiceConfig config_;
  ReplicaOptions options_;
  std::vector<std::unique_ptr<ReplicaShard>> shards_;
  /// Snapshot-backed transitive read path (overlay_graph option).
  OverlaySnapshotIndex overlay_;
  /// Serializes snapshot assemblies (owner-driven vs background thread).
  /// Lock rank 1 of 3: build_mutex_ → shard.mutex (ascending index) →
  /// poll_mutex_. The shard tier is per-instance/dynamic, so only this
  /// relation among the named members is expressible to the analysis.
  Mutex build_mutex_ SIOT_ACQUIRED_BEFORE(rebuild_mutex_, poll_mutex_);
  std::thread rebuild_thread_;
  mutable Mutex rebuild_mutex_;
  CondVar rebuild_cv_;
  bool rebuild_stopping_ SIOT_GUARDED_BY(rebuild_mutex_) = false;
  Status rebuild_status_ SIOT_GUARDED_BY(rebuild_mutex_);
  std::thread poll_thread_;
  /// Lock rank 3 of 3 (leaf): PollAll records a shard's poll failure
  /// here while still holding that shard's lock; never the reverse.
  mutable Mutex poll_mutex_;
  CondVar poll_cv_;
  bool stopping_ SIOT_GUARDED_BY(poll_mutex_) = false;
  /// Sticky first tailer corruption.
  Status tail_status_ SIOT_GUARDED_BY(poll_mutex_);
  std::atomic<bool> promoted_{false};
  mutable std::atomic<std::uint64_t> pre_evaluations_{0};
  mutable std::atomic<std::uint64_t> delegation_requests_{0};
};

}  // namespace siot::service

#endif  // SIOT_SERVICE_REPLICATION_H_
