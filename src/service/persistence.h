// Copyright 2026 The siot-trust Authors.
// Durable per-shard persistence for TrustService: checkpoint + write-ahead
// log. The trust model is built from accumulated per-pair outcome
// histories (Eqs. 14–18, 29); a serving layer that forgets them on every
// restart cannot back a real SIoT deployment.
//
// Lifecycle per shard (all files under one service directory):
//
//   shard-<i>.wal    append-only log. Every data-plane mutation and every
//                    replicated admin write is encoded as a versioned
//                    codec op (binary v2; v1 text replays compatibly —
//                    see service/wal_codec.h) and appended as a
//                    CRC32C-framed, length-prefixed, sequence-numbered
//                    record BEFORE it is applied to the shard's engine.
//                    A write is acknowledged to the caller only after its
//                    log record is durably appended AND applied; with
//                    cross-shard group commit the flush may be deferred
//                    past the apply, but never past the acknowledgment.
//   shard-<i>.ckpt   checkpoint: the full engine state plus the sequence
//                    number of the last op folded in, encoded by the
//                    versioned checkpoint codec (binary v2 sections by
//                    default; v1 text restores forever — see
//                    service/checkpoint_codec.h). Written atomically
//                    (tmp + fsync + rename + dir fsync), then the WAL is
//                    truncated. Ops are idempotently skipped at recovery
//                    when their seq is <= the checkpoint's.
//   manifest         shard count + an engine-config fingerprint, so a
//                    directory can never be recovered under a different
//                    sharding or model configuration (records would land
//                    on the wrong shards / replay would diverge).
//
// Recovery = load checkpoint (if any) + replay the WAL tail. The result is
// byte-identical (serialize-compare) to the state at the moment of the
// last acknowledged write, whatever instant the process died at:
//   * a torn final WAL record (crash mid-append) is detected by the length
//     prefix/CRC and dropped — it was never acknowledged;
//   * a complete record that was never applied (crash between append and
//     apply) replays idempotently;
//   * a half-written checkpoint only ever exists under the .tmp name and
//     is ignored;
//   * a renamed checkpoint with a stale WAL (crash before truncation)
//     skips the already-folded ops by sequence number.
// Corrupt files (bit flips, mid-file truncation) recover the longest
// valid prefix or return Status Corruption — never a crash.
//
// The FaultHook exists for the crash-recovery test harness: it is invoked
// at every kill-point of the write path, and a non-OK return makes the
// persistence layer stop dead at that point, exactly as if the process had
// been killed there (the in-flight bytes stay half-written). Production
// code leaves it unset.

#ifndef SIOT_SERVICE_PERSISTENCE_H_
#define SIOT_SERVICE_PERSISTENCE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "service/checkpoint_codec.h"
#include "service/wal_codec.h"
#include "trust/trust_engine.h"

namespace siot::service {

/// Kill-points of the durable write path, in execution order. The
/// fault-injection harness interrupts each one and asserts recovery.
enum class PersistStage {
  kWalBeforeAppend,          ///< Nothing written yet.
  kWalMidAppend,             ///< Half the frame bytes written (torn record).
  kWalBeforeSync,            ///< Frame written; inline fsync not yet issued.
  kWalAfterAppend,           ///< Frame durable; op NOT yet applied.
  kGroupCommitFlush,         ///< Group-commit leader about to flush a round.
  kCheckpointMidWrite,       ///< Half the checkpoint tmp file written.
  kCheckpointMidSection,     ///< A binary checkpoint section fully written
                             ///< to the tmp file (fires once per section —
                             ///< the tmp ends exactly on a section
                             ///< boundary). Never fires for text
                             ///< checkpoints.
  kCheckpointBeforeRename,   ///< Tmp complete + synced; not yet renamed.
  kCheckpointBeforeTruncate, ///< Renamed; WAL not yet truncated.
};

/// Test-only crash simulation: return non-OK to stop the write path at
/// `stage` as if the process died there. `shard` is the shard index.
using FaultHook = std::function<Status(PersistStage, std::size_t)>;

/// Durability configuration for TrustService::Open.
struct PersistenceOptions {
  /// Directory holding manifest + per-shard checkpoint/WAL files
  /// (created if missing).
  std::string directory;
  /// fsync the WAL after every append (group appends fsync once per
  /// batch). Off by default: the bench shows the gap, deployments choose.
  bool sync_every_append = false;
  /// Checkpoint a shard inline once this many WAL appends accumulate
  /// since its last checkpoint (0 = only explicit/periodic checkpoints).
  std::size_t checkpoint_every_appends = 0;
  /// Background thread checkpoints dirty shards this often
  /// (0 = no background thread).
  std::chrono::milliseconds checkpoint_period{0};
  /// Cross-shard group commit (only meaningful with sync_every_append):
  /// instead of every shard fsyncing its own WAL inline, concurrent
  /// durable appends enroll in a GroupCommitter that coalesces them into
  /// one filesystem flush per window. The window bounds how long a flush
  /// leader waits for co-committers to pile in; 0 disables group commit
  /// (legacy per-shard inline fsync). Can also be set through the
  /// SIOT_GROUP_COMMIT_WINDOW_US environment variable when this field is
  /// zero, so a whole test suite can be flipped into group-commit mode.
  std::chrono::microseconds group_commit_window{0};
  /// Format new checkpoints are WRITTEN in (kCheckpointFormatBinary by
  /// default; kCheckpointFormatText reproduces the pre-binary layout —
  /// the compat fixtures and restore benches write it deliberately).
  /// Reading always dispatches on the file's own format byte, so this
  /// never affects what a directory can recover from.
  std::uint8_t checkpoint_format = kCheckpointFormatBinary;
  /// Test-only kill-point hook; see FaultHook.
  FaultHook fault_hook;
};

/// One decoded WAL record.
struct WalEntry {
  std::uint64_t seq = 0;
  std::string payload;
};

/// Why a WAL scan stopped. A recovering LEADER can treat both non-clean
/// kinds the same (truncate to the valid prefix — nothing past it was
/// acknowledged), but a tailing FOLLOWER must not: an incomplete frame is
/// the expected transient of an append still landing (wait and re-read),
/// while a complete-but-invalid frame can never become valid by waiting
/// (halt, or re-check the checkpoint for a truncation race).
enum class WalTailKind {
  kClean,  ///< The file ends exactly at a frame boundary.
  kTorn,   ///< The last frame's bytes stop before its declared length —
           ///< a crash (or in-flight append) mid-write. Retryable.
  kCorrupt,  ///< A full-length frame is present but its length field or
             ///< CRC is invalid — bit rot or a stale read offset. Final.
};

/// Result of scanning a WAL file.
struct WalContents {
  std::vector<WalEntry> entries;
  /// Bytes of the longest valid frame prefix; anything past it is a torn
  /// tail from a crash mid-append — or, if larger than one frame,
  /// mid-file corruption. Recover logs a warning naming the dropped
  /// byte count, then truncates to the valid prefix.
  std::uint64_t valid_bytes = 0;
  /// Bytes past the last valid frame (0 for a cleanly closed log).
  std::uint64_t dropped_bytes = 0;
  /// True when trailing bytes past `valid_bytes` were dropped.
  bool dropped_tail = false;
  /// What stopped the scan (kClean when nothing did).
  WalTailKind tail = WalTailKind::kClean;
  /// For kCorrupt: what was wrong with the frame at `valid_bytes`.
  std::string tail_error;
};

/// Decodes the frame at the head of `bytes`. Returns the tail kind seen
/// at this position: kClean when `bytes` is empty, kTorn/kCorrupt as
/// above — only on kClean-with-a-frame does it fill `entry` and
/// `frame_bytes` (header + payload size) and, on kCorrupt, `error`.
/// The incremental decoder behind ReadWal and the replication tailer,
/// exported so the two can never disagree about frame validity.
enum class WalFrameDecode { kFrame, kEnd, kTorn, kCorrupt };
WalFrameDecode DecodeWalFrame(std::string_view bytes, WalEntry* entry,
                              std::size_t* frame_bytes, std::string* error);

/// Append-only CRC-framed log writer. Frame layout (little-endian):
///   [u32 payload_len][u32 masked crc32c(seq + payload)][u64 seq][payload]
/// Not thread-safe; the owning shard's exclusive lock serializes access.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens (creating if needed) for append; `start_offset` truncates any
  /// torn tail a previous crash left first.
  Status Open(const std::string& path, std::uint64_t start_offset);

  /// Appends frames for `payloads` with consecutive sequence numbers
  /// starting at `first_seq`, as ONE buffered write (a batch is one
  /// syscall), then fsyncs when `sync` is set. The fault hook — when
  /// armed — fires kWalBeforeAppend before any byte and kWalMidAppend
  /// after half the buffer.
  ///
  /// Any failure POISONS the writer: every later Append refuses with
  /// FailedPrecondition. After a failed append the file may end in a
  /// torn frame (and the in-flight sequence numbers may or may not be
  /// durable), so appending more frames would put acknowledged records
  /// behind garbage — where recovery's prefix scan can never see them —
  /// or reuse sequence numbers. Only a fresh Open (recovery truncated
  /// the tail) may write again.
  Status Append(const std::vector<std::string>& payloads,
                std::uint64_t first_seq, bool sync, const FaultHook& hook,
                std::size_t shard);

  /// Truncates the log to zero length (after a checkpoint).
  Status Truncate();

  /// Marks the writer failed without touching the file: used when a
  /// DEFERRED flush (group commit) fails after Append returned — the
  /// appended frames' durability is unknown, so the same
  /// no-append-after-uncertainty rule as a failed Append applies.
  void Poison() { poisoned_ = true; }

  void Close();
  bool is_open() const { return fd_ >= 0; }
  /// Underlying descriptor for a deferred flush (-1 when closed).
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  bool poisoned_ = false;
  std::string path_;
};

/// Cross-shard group commit: concurrent writers that each appended
/// frames (without an inline fsync) enroll their WAL descriptors here,
/// and one enrollee — the round's leader — flushes them ALL with a
/// single filesystem flush (syncfs(2) on Linux: the per-shard WALs live
/// on one filesystem, and the journal commit that makes one durable
/// makes them all durable; a per-descriptor fsync loop elsewhere). The
/// leader waits at most `window` for co-committers to pile in, then at
/// most one in-flight flush (bounded wait), so a lone writer pays
/// window + one flush, and N concurrent writers pay ~one flush total
/// instead of N.
///
/// Failure blast radius: a failed flush leaves every enrolled writer's
/// durability unknown, so EVERY participant of the failed round gets the
/// same FailedPrecondition — and the failure is sticky: all later Sync
/// calls refuse too (the service is degraded; restart to recover). The
/// caller must poison the affected WalWriters itself (it owns their
/// locks).
///
/// Thread-safe; this is the ONE object shared across shard locks.
class GroupCommitter {
 public:
  explicit GroupCommitter(std::chrono::microseconds window)
      : window_(window) {}

  /// Durably flushes the filesystem holding `fds`, coalescing with every
  /// concurrent caller. Returns only after the bytes this caller
  /// appended (before calling) are durable — or FailedPrecondition when
  /// this or an earlier round's flush failed. `hook`/`shard` feed the
  /// kGroupCommitFlush kill-point (leader only).
  Status Sync(std::span<const int> fds, const FaultHook& hook,
              std::size_t shard);

  /// Flush requests enrolled (one per Sync call).
  std::uint64_t sync_requests() const {
    return sync_requests_.load(std::memory_order_relaxed);
  }
  /// Filesystem flushes actually issued; `sync_requests() - flushes()`
  /// is the number of fsyncs coalescing saved.
  std::uint64_t flushes() const {
    return flushes_.load(std::memory_order_relaxed);
  }

 private:
  const std::chrono::microseconds window_;
  /// Round-state capability. Leaf lock: the leader RELEASES it around the
  /// actual filesystem flush, and no other siot lock is ever taken under
  /// it (callers hold their shard locks ABOVE it).
  Mutex mutex_;
  CondVar cv_;
  /// Round currently accepting enrollees; closes when its leader takes
  /// the pending set.
  std::uint64_t round_ SIOT_GUARDED_BY(mutex_) = 0;
  /// Rounds whose flush completed: round r's enrollees are durable once
  /// flushed_ > r.
  std::uint64_t flushed_ SIOT_GUARDED_BY(mutex_) = 0;
  bool leader_active_ SIOT_GUARDED_BY(mutex_) = false;
  std::vector<int> pending_fds_ SIOT_GUARDED_BY(mutex_);
  /// Sticky first flush failure.
  Status failure_ SIOT_GUARDED_BY(mutex_);
  /// Round of the first failed flush (none yet = max). Rounds before it
  /// flushed durably; every round from it on reports `failure_` — the
  /// exact blast radius of a failed group flush.
  std::uint64_t failed_round_ SIOT_GUARDED_BY(mutex_) =
      std::numeric_limits<std::uint64_t>::max();
  std::atomic<std::uint64_t> sync_requests_{0};
  std::atomic<std::uint64_t> flushes_{0};
};

/// Reads every valid frame of a WAL file. A missing file is an empty log.
/// Stops at the first torn/corrupt frame and reports the valid prefix —
/// record-level atomicity: a partial append is never surfaced as an op.
StatusOr<WalContents> ReadWal(const std::string& path);

/// Advisory exclusive lock on a persistence directory (flock on a LOCK
/// file), held for the owning service's lifetime: two live services
/// appending to the same WALs would interleave sequence numbers and make
/// the directory unrecoverable, so the second Open must be refused.
class DirectoryLock {
 public:
  DirectoryLock() = default;
  ~DirectoryLock();
  DirectoryLock(const DirectoryLock&) = delete;
  DirectoryLock& operator=(const DirectoryLock&) = delete;
  /// Movable so a fence acquired during failover (ReplicaService::Promote)
  /// can be handed to the TrustService that comes up writable without a
  /// release/re-acquire window another node could steal.
  DirectoryLock(DirectoryLock&& other) noexcept;
  DirectoryLock& operator=(DirectoryLock&& other) noexcept;

  /// FailedPrecondition when another live process (or service instance)
  /// holds the directory.
  Status Acquire(const std::string& directory);
  void Release();
  bool held() const { return fd_ >= 0; }
  /// The directory Acquire locked (empty when not held) — so a fence
  /// handed across a failover can be verified against the directory it
  /// is supposed to protect.
  const std::string& directory() const { return directory_; }

 private:
  int fd_ = -1;
  std::string directory_;
};

// --------------------------------------------------------------- ops --
// WAL payloads are versioned codec records — binary v2 from this
// service's writers, text v1 from directories that predate the binary
// format. Encoders and the format-dispatching decoder live in
// service/wal_codec.h (included above).

/// Validates and applies one op (either codec version) to `engine`.
/// Replay-safe: every argument is checked — intrinsically by the codec
/// (field shapes, sentinel agents, value ranges) and against the
/// engine's current state here (task registered in the catalog) — and a
/// violation returns Corruption; a corrupt log must never trip an
/// engine SIOT_CHECK.
Status ApplyWalOp(std::string_view payload, trust::TrustEngine* engine);

// ------------------------------------------------------ shard persister --

/// Checkpoint + WAL lifecycle of ONE shard. Not thread-safe; the owning
/// shard's exclusive lock (or single-threaded recovery) serializes use.
class ShardPersistence {
 public:
  /// `options` must outlive this object (the service owns both).
  ShardPersistence(const PersistenceOptions* options, std::size_t shard);

  /// Restores `engine` from checkpoint + WAL tail (both optional: a fresh
  /// directory recovers to the empty state), truncates any torn WAL tail,
  /// and leaves the writer positioned for appends. `engine` must be
  /// freshly constructed with the service's engine config.
  Status Recover(trust::TrustEngine* engine);

  /// In group-commit mode, Log (and deferred-sync callers) enroll this
  /// shard's flushes here instead of fsyncing inline. Not owned; must
  /// outlive this object. nullptr (the default) = inline fsync.
  void set_group_committer(GroupCommitter* committer) {
    committer_ = committer;
  }

  /// Durably appends ops (one frame batch), assigning sequence numbers.
  /// On success the ops may be acknowledged once applied; on error the
  /// service must treat the shard as crashed. With sync_every_append the
  /// append is flushed before returning — inline, or through the group
  /// committer when one is set (coalescing with concurrent shards).
  Status Log(const std::vector<std::string>& payloads);

  /// Log without the flush: appends the frames but leaves durability to
  /// the caller, who must enroll wal_fd() in the service's
  /// GroupCommitter (one Sync may cover many shards — the cross-shard
  /// batch path) and Poison() this shard on a failed flush. Identical to
  /// Log when no committer is set or syncing is off.
  Status LogDeferSync(const std::vector<std::string>& payloads);

  /// Descriptor for a deferred group flush (-1 before Recover).
  int wal_fd() const { return writer_.fd(); }

  /// Marks the writer unusable after a failed deferred flush; see
  /// WalWriter::Poison.
  void Poison() { writer_.Poison(); }

  /// Serializes `engine` to the checkpoint file (atomic replace) and
  /// truncates the WAL. Safe against a crash at any point (see file
  /// comment).
  Status Checkpoint(const trust::TrustEngine& engine);

  /// WAL appends since the last successful checkpoint (or recovery).
  std::uint64_t appends_since_checkpoint() const {
    return appends_since_checkpoint_;
  }

  /// Sequence number of the last durably appended op (0 = none yet).
  /// With the owning shard lock held, every frame up to this seq is fully
  /// written to the WAL file and visible to a concurrent reader — the
  /// replication position a follower synchronizes against.
  std::uint64_t last_seq() const { return next_seq_ - 1; }

  /// Current WAL file size in frame bytes (0 right after a checkpoint
  /// truncated it); a follower's byte-lag baseline.
  std::uint64_t wal_bytes() const { return wal_bytes_; }

  const std::string& wal_path() const { return wal_path_; }
  const std::string& checkpoint_path() const { return checkpoint_path_; }

  /// Inline (non-coalesced) fsyncs this shard issued; group-mode flushes
  /// are counted by the GroupCommitter instead.
  std::uint64_t inline_fsyncs() const { return inline_fsyncs_; }

 private:
  /// Shared Log/LogDeferSync body; `defer_sync` leaves group-mode
  /// durability to the caller.
  Status LogImpl(const std::vector<std::string>& payloads, bool defer_sync);

  const PersistenceOptions* options_;
  std::size_t shard_;
  std::string wal_path_;
  std::string checkpoint_path_;
  WalWriter writer_;
  GroupCommitter* committer_ = nullptr;
  std::uint64_t next_seq_ = 1;
  std::uint64_t appends_since_checkpoint_ = 0;
  std::uint64_t wal_bytes_ = 0;
  std::uint64_t inline_fsyncs_ = 0;
};

/// Paths of a shard's files under `directory`.
std::string ShardWalPath(const std::string& directory, std::size_t shard);
std::string ShardCheckpointPath(const std::string& directory,
                                std::size_t shard);
std::string ManifestPath(const std::string& directory);

}  // namespace siot::service

#endif  // SIOT_SERVICE_PERSISTENCE_H_
