// Copyright 2026 The siot-trust Authors.

#include "service/overlay_serving.h"

#include <utility>

#include "common/string_util.h"

namespace siot::service {

namespace {

std::chrono::milliseconds AgeOf(std::chrono::steady_clock::time_point then) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - then);
}

}  // namespace

Status OverlaySnapshotIndex::Configure(
    std::shared_ptr<const graph::Graph> graph,
    trust::TransitivityParams params) {
  if (graph == nullptr) {
    return Status::InvalidArgument(
        "transitive serving needs a social graph (null)");
  }
  if (graph->node_count() == 0) {
    return Status::InvalidArgument("transitive serving graph is empty");
  }
  const MutexLock lock(&mutex_);
  if (enabled_) {
    return Status::FailedPrecondition("transitive serving already enabled");
  }
  graph_ = std::move(graph);
  params_ = std::move(params);
  enabled_ = true;
  return Status::OK();
}

bool OverlaySnapshotIndex::enabled() const {
  const MutexLock lock(&mutex_);
  return enabled_;
}

std::shared_ptr<const graph::Graph> OverlaySnapshotIndex::graph() const {
  const MutexLock lock(&mutex_);
  return graph_;
}

Status OverlaySnapshotIndex::Publish(
    std::shared_ptr<const trust::VersionedOverlaySnapshot> snapshot,
    std::chrono::milliseconds assembly_cost,
    const trust::TransitivitySearch::PrepareExecutor& executor) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("null overlay snapshot");
  }
  trust::TransitivityParams params;
  {
    const MutexLock lock(&mutex_);
    if (!enabled_) {
      return Status::FailedPrecondition(
          "transitive serving not enabled (no Configure)");
    }
    if (snapshot->graph_ptr() != graph_) {
      return Status::InvalidArgument(
          "overlay snapshot built over a different graph than the index "
          "was configured with");
    }
    params = params_;
  }
  // The expensive part — one hop cache per catalog task over every
  // directed edge — runs here, with no service lock of any kind held.
  auto search = std::make_unique<trust::TransitivitySearch>(
      snapshot->snapshot(), snapshot->catalog(), std::move(params));
  std::vector<trust::TaskId> tasks(snapshot->catalog().size());
  for (trust::TaskId id = 0; id < tasks.size(); ++id) tasks[id] = id;
  search->PrepareTasks(tasks, executor);
  search->Seal();

  auto prepared = std::make_shared<Prepared>();
  prepared->snapshot = std::move(snapshot);
  prepared->search = std::move(search);
  prepared->published_at = std::chrono::steady_clock::now();
  prepared->prepared_tasks = tasks.size();
  prepared->assembly_cost = assembly_cost;
  const MutexLock lock(&mutex_);
  current_ = std::move(prepared);
  ++rebuild_count_;
  return Status::OK();
}

std::shared_ptr<const OverlaySnapshotIndex::Prepared>
OverlaySnapshotIndex::Current() const {
  const MutexLock lock(&mutex_);
  return current_;
}

Status OverlaySnapshotIndex::ValidateAgainst(
    const Prepared& prepared, const TransitiveTrustRequest& request) const {
  const graph::Graph& graph = prepared.snapshot->graph();
  if (request.trustor >= graph.node_count()) {
    return Status::InvalidArgument(
        StrFormat("trustor %u outside the social graph (%zu nodes)",
                  static_cast<unsigned>(request.trustor),
                  graph.node_count()));
  }
  if (request.task >= prepared.snapshot->catalog().size()) {
    return Status::InvalidArgument(StrFormat(
        "task %u not in the served snapshot's catalog (%zu tasks at "
        "version %s) — if it was registered since, wait for a rebuild",
        static_cast<unsigned>(request.task),
        prepared.snapshot->catalog().size(),
        trust::FormatSnapshotVersion(prepared.snapshot->version()).c_str()));
  }
  return Status::OK();
}

TransitiveTrustResult OverlaySnapshotIndex::Answer(
    const Prepared& prepared, const TransitiveTrustRequest& request) const {
  TransitiveTrustResult out;
  out.result = prepared.search->FindPotentialTrustees(
      request.trustor, prepared.snapshot->catalog().Get(request.task),
      request.method);
  out.version = prepared.snapshot->version();
  out.snapshot_age = AgeOf(prepared.published_at);
  return out;
}

StatusOr<TransitiveTrustResult> OverlaySnapshotIndex::Query(
    const TransitiveTrustRequest& request) const {
  const std::shared_ptr<const Prepared> prepared = Current();
  if (prepared == nullptr) {
    return Status::FailedPrecondition(
        enabled() ? "no overlay snapshot built yet"
                  : "transitive serving not enabled");
  }
  if (Status status = ValidateAgainst(*prepared, request); !status.ok()) {
    return status;
  }
  return Answer(*prepared, request);
}

StatusOr<std::vector<TransitiveTrustResult>> OverlaySnapshotIndex::BatchQuery(
    std::span<const TransitiveTrustRequest> requests) const {
  const std::shared_ptr<const Prepared> prepared = Current();
  if (prepared == nullptr) {
    return Status::FailedPrecondition(
        enabled() ? "no overlay snapshot built yet"
                  : "transitive serving not enabled");
  }
  // Whole-batch validation, atomic rejection — then every answer comes
  // from this one snapshot, even if a rebuild publishes mid-batch.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (Status status = ValidateAgainst(*prepared, requests[i]);
        !status.ok()) {
      return Status(
          status.code(),
          StrFormat("request %zu: %s", i, status.message().c_str()));
    }
  }
  std::vector<TransitiveTrustResult> out;
  out.reserve(requests.size());
  for (const TransitiveTrustRequest& request : requests) {
    out.push_back(Answer(*prepared, request));
  }
  return out;
}

std::shared_ptr<const trust::VersionedOverlaySnapshot>
OverlaySnapshotIndex::CurrentSnapshot() const {
  const std::shared_ptr<const Prepared> prepared = Current();
  return prepared != nullptr ? prepared->snapshot : nullptr;
}

OverlaySnapshotInfo OverlaySnapshotIndex::Info() const {
  OverlaySnapshotInfo info;
  std::shared_ptr<const Prepared> prepared;
  {
    const MutexLock lock(&mutex_);
    prepared = current_;
    info.rebuild_count = rebuild_count_;
  }
  if (prepared == nullptr) return info;
  info.built = true;
  info.version = prepared->snapshot->version();
  info.age = AgeOf(prepared->published_at);
  info.node_count = prepared->snapshot->graph().node_count();
  info.directed_edge_count =
      prepared->snapshot->snapshot().directed_edge_count();
  info.prepared_tasks = prepared->prepared_tasks;
  info.last_assembly_cost = prepared->assembly_cost;
  return info;
}

}  // namespace siot::service
