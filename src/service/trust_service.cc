// Copyright 2026 The siot-trust Authors.

#include "service/trust_service.h"

#include <algorithm>

#include "common/macros.h"

namespace siot::service {

TrustService::TrustService(TrustServiceConfig config) {
  const std::size_t shard_count = std::max<std::size_t>(config.shard_count, 1);
  shards_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    shards_.push_back(std::make_unique<Shard>(config.engine));
  }
}

std::size_t TrustService::ShardOf(trust::AgentId trustor) const {
  // SplitMix64 finalizer: adjacent agent ids spread across shards so a
  // dense trustor range doesn't pile onto one stripe.
  std::uint64_t z = trustor;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return static_cast<std::size_t>((z ^ (z >> 31)) % shards_.size());
}

// ------------------------------------------------------------- control --

StatusOr<trust::TaskId> TrustService::RegisterTask(
    const std::string& name,
    const std::vector<trust::CharacteristicId>& characteristics) {
  std::lock_guard<std::mutex> admin(admin_mutex_);
  // Probe the first shard; only on success touch the rest, so a rejected
  // registration (duplicate name, bad characteristics) leaves every
  // catalog unchanged and the replicas stay identical.
  trust::TaskId id = trust::kNoTask;
  {
    std::unique_lock<std::shared_mutex> lock(shards_[0]->mutex);
    SIOT_ASSIGN_OR_RETURN(
        id, shards_[0]->engine.catalog().AddUniform(name, characteristics));
  }
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    std::unique_lock<std::shared_mutex> lock(shards_[s]->mutex);
    const auto replica =
        shards_[s]->engine.catalog().AddUniform(name, characteristics);
    SIOT_CHECK(replica.ok() && replica.value() == id);
  }
  task_count_.store(id + 1, std::memory_order_release);
  return id;
}

Status TrustService::ValidateTask(trust::TaskId task) const {
  if (task >= task_count_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument(
        "task id " + std::to_string(task) + " is not registered");
  }
  return Status::OK();
}

namespace {

Status ValidateAgent(trust::AgentId agent, const char* role) {
  if (agent == trust::kNoAgent) {
    return Status::InvalidArgument(
        std::string(role) + " is the kNoAgent sentinel");
  }
  return Status::OK();
}

Status ValidatePreEvaluate(trust::AgentId trustor, trust::AgentId trustee) {
  SIOT_RETURN_IF_ERROR(ValidateAgent(trustor, "trustor"));
  return ValidateAgent(trustee, "trustee");
}

Status ValidateDelegation(const DelegationServiceRequest& request) {
  SIOT_RETURN_IF_ERROR(ValidateAgent(request.trustor, "trustor"));
  for (const trust::AgentId candidate : request.candidates) {
    // A kNoAgent candidate would make the result's kNoAgent sentinel
    // ambiguous with a genuine selection.
    SIOT_RETURN_IF_ERROR(ValidateAgent(candidate, "candidate"));
  }
  return Status::OK();
}

Status ValidateReport(const OutcomeReport& report) {
  SIOT_RETURN_IF_ERROR(ValidateAgent(report.trustor, "trustor"));
  // Catches clients echoing an unavailable/no_candidates result's trustee
  // straight back into the report.
  return ValidateAgent(report.trustee, "trustee");
}

}  // namespace

void TrustService::SetReverseThreshold(trust::AgentId trustee,
                                       trust::TaskId task, double theta) {
  std::lock_guard<std::mutex> admin(admin_mutex_);
  for (const auto& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard->mutex);
    shard->engine.reverse_evaluator().SetThreshold(trustee, task, theta);
  }
}

void TrustService::SetEnvironmentIndicator(trust::AgentId agent,
                                           double indicator) {
  std::lock_guard<std::mutex> admin(admin_mutex_);
  for (const auto& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard->mutex);
    shard->engine.environment().SetIndicator(agent, indicator);
  }
}

// ---------------------------------------------------------- data plane --

StatusOr<double> TrustService::PreEvaluate(trust::AgentId trustor,
                                           trust::AgentId trustee,
                                           trust::TaskId task) const {
  SIOT_RETURN_IF_ERROR(ValidateTask(task));
  SIOT_RETURN_IF_ERROR(ValidatePreEvaluate(trustor, trustee));
  pre_evaluations_.fetch_add(1, std::memory_order_relaxed);
  const Shard& shard = *shards_[ShardOf(trustor)];
  std::shared_lock<std::shared_mutex> lock(shard.mutex);
  return shard.engine.PreEvaluate(trustor, trustee, task);
}

StatusOr<trust::DelegationRequestResult> TrustService::RequestDelegation(
    const DelegationServiceRequest& request) const {
  SIOT_RETURN_IF_ERROR(ValidateTask(request.task));
  SIOT_RETURN_IF_ERROR(ValidateDelegation(request));
  delegation_requests_.fetch_add(1, std::memory_order_relaxed);
  const Shard& shard = *shards_[ShardOf(request.trustor)];
  std::shared_lock<std::shared_mutex> lock(shard.mutex);
  return shard.engine.RequestDelegation(request.trustor, request.task,
                                        request.candidates,
                                        request.self_estimates);
}

Status TrustService::ReportOutcome(const OutcomeReport& report) {
  SIOT_RETURN_IF_ERROR(ValidateTask(report.task));
  SIOT_RETURN_IF_ERROR(ValidateReport(report));
  outcome_reports_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = *shards_[ShardOf(report.trustor)];
  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  shard.engine.ReportOutcome(report.trustor, report.trustee, report.task,
                             report.outcome, report.trustor_was_abusive,
                             report.intermediates);
  return Status::OK();
}

template <typename TrustorOf, typename Body>
void TrustService::GroupByShard(std::size_t count,
                                const TrustorOf& trustor_of,
                                const Body& body) const {
  std::vector<std::vector<std::size_t>> buckets(shards_.size());
  for (std::size_t i = 0; i < count; ++i) {
    buckets[ShardOf(trustor_of(i))].push_back(i);
  }
  for (std::size_t s = 0; s < buckets.size(); ++s) {
    if (!buckets[s].empty()) body(s, buckets[s]);
  }
}

StatusOr<std::vector<double>> TrustService::BatchPreEvaluate(
    std::span<const PreEvaluateRequest> requests) const {
  for (const PreEvaluateRequest& request : requests) {
    SIOT_RETURN_IF_ERROR(ValidateTask(request.task));
    SIOT_RETURN_IF_ERROR(ValidatePreEvaluate(request.trustor,
                                             request.trustee));
  }
  pre_evaluations_.fetch_add(requests.size(), std::memory_order_relaxed);
  std::vector<double> results(requests.size());
  GroupByShard(
      requests.size(),
      [&](std::size_t i) { return requests[i].trustor; },
      [&](std::size_t s, const std::vector<std::size_t>& indices) {
        const Shard& shard = *shards_[s];
        std::shared_lock<std::shared_mutex> lock(shard.mutex);
        for (const std::size_t i : indices) {
          results[i] = shard.engine.PreEvaluate(
              requests[i].trustor, requests[i].trustee, requests[i].task);
        }
      });
  return results;
}

StatusOr<std::vector<trust::DelegationRequestResult>>
TrustService::BatchRequestDelegation(
    std::span<const DelegationServiceRequest> requests) const {
  for (const DelegationServiceRequest& request : requests) {
    SIOT_RETURN_IF_ERROR(ValidateTask(request.task));
    SIOT_RETURN_IF_ERROR(ValidateDelegation(request));
  }
  delegation_requests_.fetch_add(requests.size(),
                                 std::memory_order_relaxed);
  std::vector<trust::DelegationRequestResult> results(requests.size());
  GroupByShard(
      requests.size(),
      [&](std::size_t i) { return requests[i].trustor; },
      [&](std::size_t s, const std::vector<std::size_t>& indices) {
        const Shard& shard = *shards_[s];
        std::shared_lock<std::shared_mutex> lock(shard.mutex);
        for (const std::size_t i : indices) {
          results[i] = shard.engine.RequestDelegation(
              requests[i].trustor, requests[i].task,
              requests[i].candidates, requests[i].self_estimates);
        }
      });
  return results;
}

Status TrustService::BatchReportOutcome(
    std::span<const OutcomeReport> reports) {
  for (const OutcomeReport& report : reports) {
    SIOT_RETURN_IF_ERROR(ValidateTask(report.task));
    SIOT_RETURN_IF_ERROR(ValidateReport(report));
  }
  outcome_reports_.fetch_add(reports.size(), std::memory_order_relaxed);
  GroupByShard(
      reports.size(), [&](std::size_t i) { return reports[i].trustor; },
      [&](std::size_t s, const std::vector<std::size_t>& indices) {
        Shard& shard = *shards_[s];
        std::unique_lock<std::shared_mutex> lock(shard.mutex);
        for (const std::size_t i : indices) {
          const OutcomeReport& r = reports[i];
          shard.engine.ReportOutcome(r.trustor, r.trustee, r.task,
                                     r.outcome, r.trustor_was_abusive,
                                     r.intermediates);
        }
      });
  return Status::OK();
}

// --------------------------------------------------------- observation --

TrustServiceStats TrustService::Stats() const {
  TrustServiceStats stats;
  stats.shard_count = shards_.size();
  stats.pre_evaluations =
      pre_evaluations_.load(std::memory_order_relaxed);
  stats.delegation_requests =
      delegation_requests_.load(std::memory_order_relaxed);
  stats.outcome_reports =
      outcome_reports_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    stats.record_count += shard->engine.store().size();
    stats.pair_count += shard->engine.store().pair_count();
  }
  return stats;
}

}  // namespace siot::service
