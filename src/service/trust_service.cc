// Copyright 2026 The siot-trust Authors.

#include "service/trust_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <unordered_map>

#include "common/file_util.h"
#include "common/logging.h"
#include "common/macros.h"
#include "common/string_util.h"

namespace siot::service {

TrustService::TrustService(TrustServiceConfig config) {
  const std::size_t shard_count = std::max<std::size_t>(config.shard_count, 1);
  shards_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    shards_.push_back(std::make_unique<Shard>(config.engine));
  }
}

TrustService::~TrustService() { StopCheckpointThread(); }

// ----------------------------------------------------------- durability --

/// The manifest pins everything recovery correctness depends on: the
/// shard count (ShardOf must route every trustor to the shard whose WAL
/// holds its history) and the engine configuration (WAL replay re-runs
/// the update equations; different β or environment handling would
/// silently diverge from the pre-restart state).
std::string BuildServiceManifest(std::size_t shard_count,
                                 const TrustServiceConfig& config) {
  const trust::TrustEngineConfig& e = config.engine;
  std::string out = "siot-manifest 1\n";
  out += StrFormat("shards %zu\n", shard_count);
  out += StrFormat("normalization %d\n", static_cast<int>(e.normalization));
  out += StrFormat("value_bound %.17g\n", e.value_bound);
  out += StrFormat("beta %.17g %.17g %.17g %.17g\n", e.beta.success_rate,
                   e.beta.gain, e.beta.damage, e.beta.cost);
  out += StrFormat("strategy %d\n", static_cast<int>(e.strategy));
  out += StrFormat("default_theta %.17g\n", e.default_theta);
  out += StrFormat("initial_estimates %.17g %.17g %.17g %.17g\n",
                   e.initial_estimates.success_rate, e.initial_estimates.gain,
                   e.initial_estimates.damage, e.initial_estimates.cost);
  out += StrFormat("environment_aware %d\n", e.environment_aware ? 1 : 0);
  out += StrFormat("environment_aggregation %d\n",
                   static_cast<int>(e.environment_aggregation));
  return out;
}

StatusOr<std::unique_ptr<TrustService>> TrustService::Open(
    const TrustServiceConfig& config, const PersistenceOptions& options) {
  return Open(config, options, DirectoryLock());
}

StatusOr<std::unique_ptr<TrustService>> TrustService::Open(
    const TrustServiceConfig& config, const PersistenceOptions& options,
    DirectoryLock fence) {
  if (options.directory.empty()) {
    return Status::InvalidArgument("persistence directory is empty");
  }
  SIOT_RETURN_IF_ERROR(CreateDirectories(options.directory));
  std::unique_ptr<TrustService> service(new TrustService(config));
  // One live service per directory: concurrent appenders would
  // interleave WAL sequence numbers and wreck recovery. A promote hands
  // in the fence it already holds; everyone else acquires here.
  if (fence.held()) {
    // A fence for some OTHER directory would skip the acquire while
    // protecting nothing — the exact double-appender scenario the LOCK
    // exists to prevent.
    if (fence.directory() != options.directory) {
      return Status::InvalidArgument(
          "the pre-acquired fence locks '" + fence.directory() +
          "' but Open was asked for '" + options.directory + "'");
    }
    service->directory_lock_ = std::move(fence);
  } else {
    SIOT_RETURN_IF_ERROR(
        service->directory_lock_.Acquire(options.directory));
  }
  service->persistence_ = options;
  // CI (and operators) can force group commit on without a config plumb:
  // an explicit nonzero option wins, else SIOT_GROUP_COMMIT_WINDOW_US.
  if (service->persistence_.group_commit_window.count() == 0) {
    if (const char* env = std::getenv("SIOT_GROUP_COMMIT_WINDOW_US");
        env != nullptr) {
      if (const auto parsed = ParseInt(env);
          parsed.ok() && parsed.value() > 0) {
        service->persistence_.group_commit_window =
            std::chrono::microseconds(parsed.value());
      }
    }
  }
  if (service->persistence_.group_commit_window.count() > 0) {
    service->group_committer_ = std::make_unique<GroupCommitter>(
        service->persistence_.group_commit_window);
  }
  const std::string manifest =
      BuildServiceManifest(service->shards_.size(), config);
  const std::string manifest_path = ManifestPath(options.directory);
  if (FileExists(manifest_path)) {
    SIOT_ASSIGN_OR_RETURN(const std::string existing,
                          ReadFileToString(manifest_path));
    if (existing != manifest) {
      return Status::InvalidArgument(
          "persistence directory " + options.directory +
          " was created under a different service configuration "
          "(shard count or engine config changed); refusing to recover");
    }
  } else {
    SIOT_RETURN_IF_ERROR(WriteFileAtomic(manifest_path, manifest));
  }
  for (std::size_t s = 0; s < service->shards_.size(); ++s) {
    Shard& shard = *service->shards_[s];
    // Recovery is single-threaded, but the lock keeps the guarded
    // accesses provable (and is uncontended here).
    const WriterLock lock(&shard.mutex);
    shard.persist =
        std::make_unique<ShardPersistence>(&service->persistence_, s);
    shard.persist->set_group_committer(service->group_committer_.get());
    SIOT_RETURN_IF_ERROR(shard.persist->Recover(&shard.engine));
  }
  SIOT_RETURN_IF_ERROR(service->ReconcileAdminState());
  {
    Shard& shard0 = *service->shards_[0];
    const ReaderLock lock(&shard0.mutex);
    service->task_count_.store(
        static_cast<trust::TaskId>(shard0.engine.catalog().size()),
        std::memory_order_release);
  }
  if (options.checkpoint_period.count() > 0) {
    service->StartCheckpointThread();
  }
  return service;
}

Status TrustService::ReconcileAdminState() {
  // Shard 0's shared lock is held across the whole reconciliation (the
  // authority reference below reads its guarded engine); each lagging
  // shard is then locked exclusively — index order 0 < s matches the
  // shard-lock rank. Single-threaded at this point (Open), so the locks
  // are uncontended and exist for the analysis' benefit.
  Shard& shard0 = *shards_[0];
  const ReaderLock authority_lock(&shard0.mutex);
  const trust::TrustEngine& authority = shard0.engine;
  const auto authority_thresholds =
      authority.reverse_evaluator().AllThresholds();
  const auto authority_env = authority.environment().AllIndicators();
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    const WriterLock lock(&shard.mutex);
    if (shard.engine.catalog().size() > authority.catalog().size()) {
      return Status::Corruption(StrFormat(
          "shard %zu recovered %zu catalog tasks but shard 0 has %zu — "
          "admin replication always reaches shard 0 first",
          s, shard.engine.catalog().size(), authority.catalog().size()));
    }
    std::vector<std::string> ops;
    for (auto id = static_cast<trust::TaskId>(shard.engine.catalog().size());
         id < authority.catalog().size(); ++id) {
      const trust::Task& task = authority.catalog().Get(id);
      std::vector<trust::CharacteristicId> characteristics;
      characteristics.reserve(task.parts().size());
      for (const trust::WeightedCharacteristic& part : task.parts()) {
        characteristics.push_back(part.id);
      }
      ops.push_back(EncodeTaskOpBinary(task.name(), characteristics));
    }
    const auto pack = [](trust::AgentId a, trust::TaskId t) {
      return (static_cast<std::uint64_t>(a) << 32) | t;
    };
    std::unordered_map<std::uint64_t, double> have;
    for (const trust::ThresholdEntry& entry :
         shard.engine.reverse_evaluator().AllThresholds()) {
      have.emplace(pack(entry.trustee, entry.task), entry.theta);
    }
    for (const trust::ThresholdEntry& entry : authority_thresholds) {
      const auto it = have.find(pack(entry.trustee, entry.task));
      if (it == have.end() || it->second != entry.theta) {
        ops.push_back(
            EncodeThetaOpBinary(entry.trustee, entry.task, entry.theta));
      }
    }
    std::unordered_map<trust::AgentId, double> have_env;
    for (const auto& [agent, indicator] :
         shard.engine.environment().AllIndicators()) {
      have_env.emplace(agent, indicator);
    }
    for (const auto& [agent, indicator] : authority_env) {
      const auto it = have_env.find(agent);
      if (it == have_env.end() || it->second != indicator) {
        ops.push_back(EncodeEnvOpBinary(agent, indicator));
      }
    }
    if (ops.empty()) continue;
    SIOT_RETURN_IF_ERROR(shard.persist->Log(ops));
    for (const std::string& op : ops) {
      SIOT_RETURN_IF_ERROR(ApplyWalOp(op, &shard.engine));
    }
  }
  return Status::OK();
}

Status TrustService::Checkpoint() {
  if (!persistent()) {
    return Status::FailedPrecondition(
        "service was not opened with persistence");
  }
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    const WriterLock lock(&shard.mutex);
    SIOT_RETURN_IF_ERROR(CheckpointShardLocked(shard));
  }
  return Status::OK();
}

Status TrustService::CheckpointShardLocked(Shard& shard) {
  return shard.persist->Checkpoint(shard.engine);
}

const trust::TrustEngine& TrustService::EngineOfShardAllLocked(
    const Shard& shard) const {
  // Provably held: only called under RebuildOverlaySnapshot's
  // MultiReaderLock, which holds every shard's lock shared — a dynamic
  // lock set the analysis cannot track, hence the re-assert.
  shard.mutex.AssertReaderHeld();
  return shard.engine;
}

std::uint64_t TrustService::DurableSeqOfShardAllLocked(
    const Shard& shard) const {
  // Same MultiReaderLock audit as EngineOfShardAllLocked above.
  shard.mutex.AssertReaderHeld();
  return shard.persist != nullptr ? shard.persist->last_seq() : 0;
}

void TrustService::MaybeAutoCheckpointLocked(Shard& shard) {
  if (!shard.persist || persistence_.checkpoint_every_appends == 0 ||
      shard.persist->appends_since_checkpoint() <
          persistence_.checkpoint_every_appends) {
    return;
  }
  // The triggering writes are already durable in the WAL and applied, so
  // a failed checkpoint degrades recovery time, not correctness.
  const Status status = CheckpointShardLocked(shard);
  if (!status.ok()) {
    SIOT_LOG_WARN("auto checkpoint failed: %s",
                  status.ToString().c_str());
    const MutexLock lock(&background_mutex_);
    if (background_status_.ok()) background_status_ = status;
  }
}

Status TrustService::background_status() const {
  const MutexLock lock(&background_mutex_);
  return background_status_;
}

void TrustService::StartCheckpointThread() {
  checkpoint_thread_ = std::thread([this] {
    for (;;) {
      {
        // Deadline sleep, interruptible by StopCheckpointThread. The
        // predicate is hand-rolled (not a wait_for lambda) so the
        // analysis sees the guarded `stopping_` reads under the lock.
        MutexLock lock(&background_mutex_);
        const auto deadline =
            std::chrono::steady_clock::now() + persistence_.checkpoint_period;
        while (!stopping_) {
          if (!background_cv_.WaitUntil(background_mutex_, deadline)) break;
        }
        if (stopping_) return;
      }
      // Checkpoint pass runs with background_mutex_ RELEASED — each
      // shard lock is rank 2, background_mutex_ rank 3.
      for (const auto& shard_ptr : shards_) {
        Shard& shard = *shard_ptr;
        const WriterLock shard_lock(&shard.mutex);
        if (shard.persist->appends_since_checkpoint() == 0) continue;
        const Status status = CheckpointShardLocked(shard);
        if (!status.ok()) {
          SIOT_LOG_WARN("periodic checkpoint failed: %s",
                        status.ToString().c_str());
          const MutexLock lock(&background_mutex_);
          if (background_status_.ok()) background_status_ = status;
        }
      }
    }
  });
}

void TrustService::StopCheckpointThread() {
  {
    const MutexLock lock(&background_mutex_);
    stopping_ = true;
  }
  background_cv_.NotifyAll();
  if (checkpoint_thread_.joinable()) checkpoint_thread_.join();
}

std::size_t ShardIndexForTrustor(trust::AgentId trustor,
                                 std::size_t shard_count) {
  std::uint64_t z = trustor;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return static_cast<std::size_t>((z ^ (z >> 31)) % shard_count);
}

std::size_t TrustService::ShardOf(trust::AgentId trustor) const {
  return ShardIndexForTrustor(trustor, shards_.size());
}

// ------------------------------------------------------------- control --

StatusOr<trust::TaskId> TrustService::RegisterTask(
    const std::string& name,
    const std::vector<trust::CharacteristicId>& characteristics) {
  SIOT_RETURN_IF_ERROR(CheckNotDegraded());
  const MutexLock admin(&admin_mutex_);
  // Validate up front so a rejected registration (duplicate name, bad
  // characteristics) leaves every catalog unchanged, the replicas stay
  // identical, and — in durable mode — nothing reaches a WAL. Once
  // validation passes, every per-shard AddUniform must succeed.
  {
    Shard& shard0 = *shards_[0];
    const ReaderLock lock(&shard0.mutex);
    if (shard0.engine.catalog().FindByName(name).ok()) {
      return Status::AlreadyExists("task name '" + name +
                                   "' already used");
    }
  }
  {
    const auto probe = trust::Task::CreateUniform(0, name, characteristics);
    if (!probe.ok()) return probe.status();
  }
  trust::TaskId id = trust::kNoTask;
  std::vector<std::size_t> logged_shards;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    const WriterLock lock(&shard.mutex);
    if (shard.persist) {
      // Deferred sync: all shard_count appends flush in ONE group-commit
      // round below instead of one fsync per shard.
      SIOT_RETURN_IF_ERROR(
          LogOrDegrade(shard.persist.get(),
                       {EncodeTaskOpBinary(name, characteristics)},
                       /*defer_sync=*/true));
      logged_shards.push_back(s);
    }
    const auto replica =
        shard.engine.catalog().AddUniform(name, characteristics);
    SIOT_CHECK(replica.ok());
    if (s == 0) {
      id = replica.value();
    } else {
      SIOT_CHECK(replica.value() == id);
    }
  }
  SIOT_RETURN_IF_ERROR(GroupSyncShards(logged_shards));
  task_count_.store(id + 1, std::memory_order_release);
  return id;
}

Status TrustService::CheckNotDegraded() const {
  if (degraded()) {
    return Status::FailedPrecondition(
        "a WAL append failed earlier; the service refuses further "
        "mutations (replicas may be divergent) — restart to recover");
  }
  return Status::OK();
}

Status TrustService::LogOrDegrade(ShardPersistence* persist,
                                  const std::vector<std::string>& payloads,
                                  bool defer_sync) {
  Status logged = defer_sync ? persist->LogDeferSync(payloads)
                             : persist->Log(payloads);
  if (!logged.ok()) {
    degraded_.store(true, std::memory_order_release);
  }
  return logged;
}

Status TrustService::GroupSyncShards(
    const std::vector<std::size_t>& shard_ids) {
  if (group_committer_ == nullptr || !persistence_.sync_every_append ||
      shard_ids.empty()) {
    return Status::OK();
  }
  std::vector<int> fds;
  fds.reserve(shard_ids.size());
  for (const std::size_t s : shard_ids) {
    // The fd itself is immutable after Open, but the writer object is
    // shard state: read it under the shard's (shared) lock like every
    // other persist access. The thread-safety analysis flagged the old
    // lock-free read here — no observable race (the fd never changes
    // post-Open), but the discipline is now uniform and provable.
    Shard& shard = *shards_[s];
    const ReaderLock lock(&shard.mutex);
    fds.push_back(shard.persist->wal_fd());
  }
  Status synced = group_committer_->Sync(fds, persistence_.fault_hook,
                                         shard_ids.front());
  if (!synced.ok()) {
    // The round's durability is unknown on EVERY enrolled shard; poison
    // each writer (under its lock — appenders hold it) exactly as a
    // failed inline fsync would have, then degrade the whole service.
    for (const std::size_t s : shard_ids) {
      Shard& shard = *shards_[s];
      const WriterLock lock(&shard.mutex);
      shard.persist->Poison();
    }
    degraded_.store(true, std::memory_order_release);
  }
  return synced;
}

Status TrustService::ValidateTask(trust::TaskId task) const {
  if (task >= task_count_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument(
        "task id " + std::to_string(task) + " is not registered");
  }
  return Status::OK();
}

namespace {

Status ValidateAgent(trust::AgentId agent, const char* role) {
  if (agent == trust::kNoAgent) {
    return Status::InvalidArgument(
        std::string(role) + " is the kNoAgent sentinel");
  }
  return Status::OK();
}

Status ValidatePreEvaluate(trust::AgentId trustor, trust::AgentId trustee) {
  SIOT_RETURN_IF_ERROR(ValidateAgent(trustor, "trustor"));
  return ValidateAgent(trustee, "trustee");
}

Status ValidateDelegation(const DelegationServiceRequest& request) {
  SIOT_RETURN_IF_ERROR(ValidateAgent(request.trustor, "trustor"));
  for (const trust::AgentId candidate : request.candidates) {
    // A kNoAgent candidate would make the result's kNoAgent sentinel
    // ambiguous with a genuine selection.
    SIOT_RETURN_IF_ERROR(ValidateAgent(candidate, "candidate"));
  }
  return Status::OK();
}

/// A delegation relay chain is a handful of hops (the paper's §4.5 uses
/// single intermediates); 1024 is far beyond any honest chain. The bound
/// keeps one hostile report from minting a WAL record big enough to trip
/// the writer's payload-size check — client data must never reach a
/// SIOT_CHECK.
constexpr std::size_t kMaxIntermediates = 1024;

Status ValidateReport(const OutcomeReport& report) {
  SIOT_RETURN_IF_ERROR(ValidateAgent(report.trustor, "trustor"));
  // Catches clients echoing an unavailable/no_candidates result's trustee
  // straight back into the report.
  SIOT_RETURN_IF_ERROR(ValidateAgent(report.trustee, "trustee"));
  if (report.intermediates.size() > kMaxIntermediates) {
    return Status::InvalidArgument(
        StrFormat("delegation chain of %zu intermediates exceeds the "
                  "limit of %zu",
                  report.intermediates.size(), kMaxIntermediates));
  }
  // A non-finite observation would poison the pair's estimates forever —
  // and with persistence the NaN round-trips through every restart, so
  // the boundary must keep it out of the model entirely.
  for (const double value : {report.outcome.gain, report.outcome.damage,
                             report.outcome.cost}) {
    if (!std::isfinite(value)) {
      return Status::InvalidArgument(
          "outcome gain/damage/cost must be finite");
    }
  }
  return Status::OK();
}

}  // namespace

Status TrustService::SetReverseThreshold(trust::AgentId trustee,
                                         trust::TaskId task, double theta) {
  // A NaN threshold would poison reverse evaluations AND defeat the
  // exact-equality compare recovery's admin reconciliation relies on
  // (NaN != NaN would re-log the op on every restart).
  if (std::isnan(theta)) {
    return Status::InvalidArgument("reverse threshold is NaN");
  }
  SIOT_RETURN_IF_ERROR(CheckNotDegraded());
  const MutexLock admin(&admin_mutex_);
  std::vector<std::size_t> logged_shards;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    const WriterLock lock(&shard.mutex);
    if (shard.persist) {
      SIOT_RETURN_IF_ERROR(
          LogOrDegrade(shard.persist.get(),
                       {EncodeThetaOpBinary(trustee, task, theta)},
                       /*defer_sync=*/true));
      logged_shards.push_back(s);
    }
    shard.engine.reverse_evaluator().SetThreshold(trustee, task, theta);
  }
  return GroupSyncShards(logged_shards);
}

Status TrustService::SetEnvironmentIndicator(trust::AgentId agent,
                                             double indicator) {
  // The engine treats an out-of-range indicator as a programming error
  // (SIOT_CHECK); the serving boundary rejects it as data instead.
  if (!(indicator > 0.0 && indicator <= 1.0)) {
    return Status::InvalidArgument(
        StrFormat("environment indicator %g outside (0, 1]", indicator));
  }
  SIOT_RETURN_IF_ERROR(CheckNotDegraded());
  const MutexLock admin(&admin_mutex_);
  std::vector<std::size_t> logged_shards;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    const WriterLock lock(&shard.mutex);
    if (shard.persist) {
      SIOT_RETURN_IF_ERROR(
          LogOrDegrade(shard.persist.get(),
                       {EncodeEnvOpBinary(agent, indicator)},
                       /*defer_sync=*/true));
      logged_shards.push_back(s);
    }
    shard.engine.environment().SetIndicator(agent, indicator);
  }
  return GroupSyncShards(logged_shards);
}

// ---------------------------------------------------------- data plane --

StatusOr<double> TrustService::PreEvaluate(trust::AgentId trustor,
                                           trust::AgentId trustee,
                                           trust::TaskId task) const {
  SIOT_RETURN_IF_ERROR(ValidateTask(task));
  SIOT_RETURN_IF_ERROR(ValidatePreEvaluate(trustor, trustee));
  pre_evaluations_.fetch_add(1, std::memory_order_relaxed);
  const Shard& shard = *shards_[ShardOf(trustor)];
  const ReaderLock lock(&shard.mutex);
  return shard.engine.PreEvaluate(trustor, trustee, task);
}

StatusOr<trust::DelegationRequestResult> TrustService::RequestDelegation(
    const DelegationServiceRequest& request) const {
  SIOT_RETURN_IF_ERROR(ValidateTask(request.task));
  SIOT_RETURN_IF_ERROR(ValidateDelegation(request));
  delegation_requests_.fetch_add(1, std::memory_order_relaxed);
  const Shard& shard = *shards_[ShardOf(request.trustor)];
  const ReaderLock lock(&shard.mutex);
  return shard.engine.RequestDelegation(request.trustor, request.task,
                                        request.candidates,
                                        request.self_estimates);
}

Status TrustService::ReportOutcome(const OutcomeReport& report) {
  SIOT_RETURN_IF_ERROR(CheckNotDegraded());
  SIOT_RETURN_IF_ERROR(ValidateTask(report.task));
  SIOT_RETURN_IF_ERROR(ValidateReport(report));
  Shard& shard = *shards_[ShardOf(report.trustor)];
  const WriterLock lock(&shard.mutex);
  // Log before apply: an OK return means the write is durable AND
  // applied; an error means it may be neither — the service degrades to
  // read-only and a restart squares the ledger from the WAL.
  if (shard.persist) {
    SIOT_RETURN_IF_ERROR(LogOrDegrade(
        shard.persist.get(),
        {EncodeOutcomeOpBinary(report.trustor, report.trustee, report.task,
                               report.outcome, report.trustor_was_abusive,
                               report.intermediates)}));
  }
  shard.engine.ReportOutcome(report.trustor, report.trustee, report.task,
                             report.outcome, report.trustor_was_abusive,
                             report.intermediates);
  outcome_reports_.fetch_add(1, std::memory_order_relaxed);
  MaybeAutoCheckpointLocked(shard);
  return Status::OK();
}

template <typename TrustorOf, typename Body>
void TrustService::GroupByShard(std::size_t count,
                                const TrustorOf& trustor_of,
                                const Body& body) const {
  std::vector<std::vector<std::size_t>> buckets(shards_.size());
  for (std::size_t i = 0; i < count; ++i) {
    buckets[ShardOf(trustor_of(i))].push_back(i);
  }
  for (std::size_t s = 0; s < buckets.size(); ++s) {
    if (!buckets[s].empty()) body(s, buckets[s]);
  }
}

StatusOr<std::vector<double>> TrustService::BatchPreEvaluate(
    std::span<const PreEvaluateRequest> requests) const {
  for (const PreEvaluateRequest& request : requests) {
    SIOT_RETURN_IF_ERROR(ValidateTask(request.task));
    SIOT_RETURN_IF_ERROR(ValidatePreEvaluate(request.trustor,
                                             request.trustee));
  }
  pre_evaluations_.fetch_add(requests.size(), std::memory_order_relaxed);
  std::vector<double> results(requests.size());
  GroupByShard(
      requests.size(),
      [&](std::size_t i) { return requests[i].trustor; },
      [&](std::size_t s, const std::vector<std::size_t>& indices) {
        const Shard& shard = *shards_[s];
        const ReaderLock lock(&shard.mutex);
        for (const std::size_t i : indices) {
          results[i] = shard.engine.PreEvaluate(
              requests[i].trustor, requests[i].trustee, requests[i].task);
        }
      });
  return results;
}

StatusOr<std::vector<trust::DelegationRequestResult>>
TrustService::BatchRequestDelegation(
    std::span<const DelegationServiceRequest> requests) const {
  for (const DelegationServiceRequest& request : requests) {
    SIOT_RETURN_IF_ERROR(ValidateTask(request.task));
    SIOT_RETURN_IF_ERROR(ValidateDelegation(request));
  }
  delegation_requests_.fetch_add(requests.size(),
                                 std::memory_order_relaxed);
  std::vector<trust::DelegationRequestResult> results(requests.size());
  GroupByShard(
      requests.size(),
      [&](std::size_t i) { return requests[i].trustor; },
      [&](std::size_t s, const std::vector<std::size_t>& indices) {
        const Shard& shard = *shards_[s];
        const ReaderLock lock(&shard.mutex);
        for (const std::size_t i : indices) {
          results[i] = shard.engine.RequestDelegation(
              requests[i].trustor, requests[i].task,
              requests[i].candidates, requests[i].self_estimates);
        }
      });
  return results;
}

Status TrustService::BatchReportOutcome(
    std::span<const OutcomeReport> reports) {
  SIOT_RETURN_IF_ERROR(CheckNotDegraded());
  for (const OutcomeReport& report : reports) {
    SIOT_RETURN_IF_ERROR(ValidateTask(report.task));
    SIOT_RETURN_IF_ERROR(ValidateReport(report));
  }
  Status failure;
  std::vector<std::size_t> logged_shards;
  GroupByShard(
      reports.size(), [&](std::size_t i) { return reports[i].trustor; },
      [&](std::size_t s, const std::vector<std::size_t>& indices) {
        if (!failure.ok()) return;  // A shard crashed; stop the batch.
        Shard& shard = *shards_[s];
        const WriterLock lock(&shard.mutex);
        if (shard.persist) {
          // One frame batch = one write per shard per batch, and the
          // flush is deferred so the WHOLE batch pays one group-commit
          // round below instead of one fsync per touched shard; a torn
          // tail drops whole trailing records, never half a record.
          std::vector<std::string> ops;
          ops.reserve(indices.size());
          for (const std::size_t i : indices) {
            const OutcomeReport& r = reports[i];
            ops.push_back(EncodeOutcomeOpBinary(
                r.trustor, r.trustee, r.task, r.outcome,
                r.trustor_was_abusive, r.intermediates));
          }
          if (Status logged = LogOrDegrade(shard.persist.get(), ops,
                                           /*defer_sync=*/true);
              !logged.ok()) {
            failure = std::move(logged);
            return;
          }
          logged_shards.push_back(s);
        }
        for (const std::size_t i : indices) {
          const OutcomeReport& r = reports[i];
          shard.engine.ReportOutcome(r.trustor, r.trustee, r.task,
                                     r.outcome, r.trustor_was_abusive,
                                     r.intermediates);
        }
        outcome_reports_.fetch_add(indices.size(),
                                   std::memory_order_relaxed);
        MaybeAutoCheckpointLocked(shard);
      });
  SIOT_RETURN_IF_ERROR(failure);
  // Nothing is acknowledged before this flush returns: applied-but-
  // unflushed frames are visible to readers for the window of one round,
  // but an OK BatchReportOutcome still means "durable AND applied".
  return GroupSyncShards(logged_shards);
}

// ------------------------------------------------ transitive read path --

Status TrustService::EnableTransitiveServing(
    std::shared_ptr<const graph::Graph> graph,
    trust::TransitivityParams params) {
  return overlay_.Configure(std::move(graph), std::move(params));
}

Status TrustService::RebuildOverlaySnapshot() {
  const std::shared_ptr<const graph::Graph> graph = overlay_.graph();
  if (graph == nullptr) {
    return Status::FailedPrecondition(
        "transitive serving not enabled (EnableTransitiveServing)");
  }
  const auto assembly_start = std::chrono::steady_clock::now();
  std::shared_ptr<const trust::VersionedOverlaySnapshot> built;
  {
    // One consistent cut: every shard's shared lock is held
    // SIMULTANEOUSLY for the whole assembly + version stamp. Per-shard
    // reads at different times could catch an admin write (replicated
    // shard by shard) half-applied, or stamp a version no single moment
    // of the service ever was in. Deadlock-free: every other thread —
    // data plane, admin, checkpointer — holds at most one shard lock at
    // a time, and we acquire in fixed index order (MultiReaderLock's
    // class comment carries the full argument). Guarded reads under the
    // dynamic lock set go through the *AllLocked helpers, which
    // re-assert the one shard capability each access needs.
    std::vector<SharedMutex*> mutexes;
    mutexes.reserve(shards_.size());
    for (const auto& shard : shards_) mutexes.push_back(&shard->mutex);
    const MultiReaderLock all_shards(std::move(mutexes));
    std::vector<const trust::TrustStore*> stores;
    trust::SnapshotVersion version;
    stores.reserve(shards_.size());
    version.applied_seq.reserve(shards_.size());
    for (const auto& shard : shards_) {
      stores.push_back(&EngineOfShardAllLocked(*shard).store());
      version.applied_seq.push_back(DurableSeqOfShardAllLocked(*shard));
    }
    const trust::ShardedStoreOverlay source(
        std::move(stores), EngineOfShardAllLocked(*shards_[0]).normalizer(),
        [count = shards_.size()](trust::AgentId trustor) {
          return ShardIndexForTrustor(trustor, count);
        });
    built = std::make_shared<trust::VersionedOverlaySnapshot>(
        graph, EngineOfShardAllLocked(*shards_[0]).catalog(), source,
        std::move(version));
  }  // Locks drop here; hop-cache preparation below runs lock-free.
  const auto assembly_cost =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - assembly_start);
  return overlay_.Publish(std::move(built), assembly_cost);
}

StatusOr<TransitiveTrustResult> TrustService::TransitiveTrust(
    const TransitiveTrustRequest& request) const {
  return overlay_.Query(request);
}

StatusOr<std::vector<TransitiveTrustResult>>
TrustService::BatchTransitiveTrust(
    std::span<const TransitiveTrustRequest> requests) const {
  return overlay_.BatchQuery(requests);
}

// --------------------------------------------------------- observation --

std::vector<ShardWalPosition> TrustService::WalPositions() const {
  std::vector<ShardWalPosition> positions;
  if (!persistent()) return positions;
  positions.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    // Taking the lock shared waits out any in-flight append (appenders
    // hold it exclusive), which is exactly the frame-visibility barrier
    // the header promises.
    const ReaderLock lock(&shard.mutex);
    positions.push_back(
        {s, shard.persist->last_seq(), shard.persist->wal_bytes()});
  }
  return positions;
}

TrustServiceStats TrustService::Stats() const {
  TrustServiceStats stats;
  stats.shard_count = shards_.size();
  stats.pre_evaluations =
      pre_evaluations_.load(std::memory_order_relaxed);
  stats.delegation_requests =
      delegation_requests_.load(std::memory_order_relaxed);
  stats.outcome_reports =
      outcome_reports_.load(std::memory_order_relaxed);
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    const ReaderLock lock(&shard.mutex);
    stats.record_count += shard.engine.store().size();
    stats.pair_count += shard.engine.store().pair_count();
    if (shard.persist) {
      stats.wal_sync_requests += shard.persist->inline_fsyncs();
      stats.wal_fsyncs += shard.persist->inline_fsyncs();
    }
  }
  if (group_committer_ != nullptr) {
    stats.wal_sync_requests += group_committer_->sync_requests();
    stats.wal_fsyncs += group_committer_->flushes();
    stats.wal_syncs_coalesced =
        group_committer_->sync_requests() - group_committer_->flushes();
  }
  return stats;
}

}  // namespace siot::service
