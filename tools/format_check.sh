#!/bin/sh
# clang-format dry-run over every C++ file in the tree, then the
# concurrency-discipline lint (tools/lint_concurrency.py).
#
# Exits non-zero if any file would be reformatted or any lint rule
# fires. Override the binary with CLANG_FORMAT=/path/to/clang-format
# (e.g. a pinned major version in CI).
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
clang_format="${CLANG_FORMAT:-clang-format}"

if ! command -v "$clang_format" >/dev/null 2>&1; then
  echo "error: '$clang_format' not found; install clang-format or set CLANG_FORMAT" >&2
  exit 127
fi

# shellcheck disable=SC2046
files=$(find "$repo_root/src" "$repo_root/tests" "$repo_root/bench" \
             "$repo_root/examples" "$repo_root/tools" \
             -name '*.cc' -o -name '*.cpp' -o -name '*.h')

status=0
for f in $files; do
  if ! "$clang_format" --dry-run --Werror "$f" >/dev/null; then
    echo "needs formatting: $f"
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "run: $clang_format -i <file> (style: $repo_root/.clang-format)" >&2
fi

if ! python3 "$repo_root/tools/lint_concurrency.py"; then
  status=1
fi

exit $status
