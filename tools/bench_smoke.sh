#!/bin/sh
# Bench smoke: run the serving/persistence/replication/store benches in
# quick mode and write machine-readable BENCH_*.json next to each other,
# so CI can publish per-PR perf artifacts and a trend line can diff them.
#
# Usage: bench_smoke.sh <build-dir> [out-dir]
#
# Quick mode (SIOT_BENCH_QUICK=1) shrinks workload sizes inside the
# binaries; --benchmark_min_time keeps google-benchmark's own iteration
# budget small. Exits non-zero if any bench fails or a JSON comes out
# empty — an unparseable artifact is worse than a missing one.
set -eu

build="$1"
out="${2:-.}"
mkdir -p "$out"

run_bench() {
  bench="$1"
  json="$2"
  echo "== ${bench} -> ${json} =="
  # The if-guard matters under `set -e`: a raw invocation would kill the
  # whole script on a crashed bench with nothing but the harness's own
  # output to say WHICH binary died.
  if ! SIOT_BENCH_QUICK=1 "${build}/bench/${bench}" \
    --benchmark_min_time=0.05 \
    --benchmark_out="${out}/${json}" \
    --benchmark_out_format=json; then
    echo "FAIL: ${bench} exited non-zero" >&2
    exit 1
  fi
  # Parse, don't grep: a bench that crashed mid-run leaves a truncated
  # file that still contains the '"benchmarks"' substring.
  if ! python3 -c "
import json, sys
doc = json.load(open(sys.argv[1]))
sys.exit(0 if doc.get('benchmarks') else 1)
" "${out}/${json}"; then
    echo "FAIL: ${bench} wrote ${out}/${json} without valid benchmark JSON" >&2
    exit 1
  fi
}

run_bench bench_service_throughput BENCH_service.json
run_bench bench_persistence BENCH_persistence.json
run_bench bench_store_scaling BENCH_store_scaling.json
run_bench bench_replication BENCH_replication.json
run_bench bench_overlay_snapshot BENCH_overlay.json
run_bench bench_attack BENCH_attack.json

echo "bench-smoke OK:"
ls -l "${out}"/BENCH_*.json
