// Copyright 2026 The siot-trust Authors.
//
// siot_experiments — config-driven runner for the paper's experiments.
//
// Runs any of the §5 experiments with parameters overridden from
// key=value arguments or a config file, so sweeps beyond the paper's grid
// don't require recompilation:
//
//   siot_experiments experiment=mutuality network=facebook theta=0.45
//   siot_experiments experiment=transitivity characteristics=6 seed=7
//   siot_experiments experiment=delegation beta=0.8 iterations=5000
//   siot_experiments experiment=environment runs=200
//   siot_experiments experiment=serve shards=8 threads=4 rounds=2
//   siot_experiments experiment=persist shards=4 rounds=3 fsync=1
//   siot_experiments experiment=replicate shards=4 rounds=3
//   siot_experiments experiment=transit_serve shards=4 rounds=3 tasks=3
//   siot_experiments experiment=attack attack=onoff fractions=0.1,0.3
//   siot_experiments config=/path/to/file.cfg
//
// Prints the experiment's headline metrics as an aligned table and exits
// non-zero on configuration errors.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/config.h"
#include "common/string_util.h"
#include "common/table.h"
#include "graph/datasets.h"
#include "graph/graph.h"
#include "service/replication.h"
#include "service/trust_service.h"
#include "sim/adversary.h"
#include "sim/delegation_results_experiment.h"
#include "sim/environment_experiment.h"
#include "sim/mutuality_experiment.h"
#include "sim/parallel_runner.h"
#include "sim/transitivity_experiment.h"
#include "trust/overlay_builder.h"
#include "trust/transitivity.h"
#include "trust/trust_engine.h"
#include "trust/trust_store_io.h"

namespace siot {
namespace {

StatusOr<graph::SocialNetwork> ParseNetwork(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "facebook") return graph::SocialNetwork::kFacebook;
  if (lower == "google+" || lower == "googleplus" || lower == "gplus") {
    return graph::SocialNetwork::kGooglePlus;
  }
  if (lower == "twitter") return graph::SocialNetwork::kTwitter;
  return Status::InvalidArgument("unknown network '" + name +
                                 "' (facebook|google+|twitter)");
}

StatusOr<std::size_t> ParseThreads(const Config& config) {
  const std::int64_t threads = config.GetIntOr("threads", 1);
  // 0 means hardware concurrency; anything negative (or absurd) would be
  // cast to a huge std::size_t and abort inside ParallelRunner.
  if (threads < 0 || threads > 1024) {
    return Status::InvalidArgument(
        StrFormat("threads=%lld out of range [0, 1024]",
                  static_cast<long long>(threads)));
  }
  return static_cast<std::size_t>(threads);
}

Status RunMutuality(const Config& config) {
  SIOT_ASSIGN_OR_RETURN(
      const graph::SocialNetwork network,
      ParseNetwork(config.GetStringOr("network", "facebook")));
  const graph::SocialDataset dataset = graph::LoadDataset(network);
  sim::MutualityConfig mc;
  mc.seed = static_cast<std::uint64_t>(config.GetIntOr("seed", 2026));
  if (config.Has("theta")) {
    SIOT_ASSIGN_OR_RETURN(const double theta, config.GetDouble("theta"));
    mc.thetas = {theta};
  }
  mc.requests_per_trustor = static_cast<std::size_t>(
      config.GetIntOr("requests_per_trustor", 10));
  SIOT_ASSIGN_OR_RETURN(mc.threads, ParseThreads(config));
  const sim::MutualityResult result =
      sim::RunMutualityExperiment(dataset, mc);
  TextTable table(StrFormat("Mutuality (Fig. 7 setup) on %s",
                            std::string(graph::SocialNetworkName(network))
                                .c_str()));
  table.SetHeader({"theta", "success", "unavailable", "abuse"});
  for (const sim::MutualityPoint& point : result.points) {
    table.AddRow({FormatDouble(point.theta, 2),
                  FormatDouble(point.tally.success_rate(), 4),
                  FormatDouble(point.tally.unavailable_rate(), 4),
                  FormatDouble(point.tally.abuse_rate(), 4)});
  }
  std::fputs(table.Render().c_str(), stdout);
  return Status::OK();
}

Status RunTransitivity(const Config& config) {
  SIOT_ASSIGN_OR_RETURN(
      const graph::SocialNetwork network,
      ParseNetwork(config.GetStringOr("network", "facebook")));
  const graph::SocialDataset dataset = graph::LoadDataset(network);
  sim::TransitivityConfig tc;
  tc.seed = static_cast<std::uint64_t>(config.GetIntOr("seed", 2026));
  tc.world.characteristic_count = static_cast<std::size_t>(
      config.GetIntOr("characteristics", 5));
  tc.max_hops =
      static_cast<std::size_t>(config.GetIntOr("max_hops", 5));
  tc.omega1 = config.GetDoubleOr("omega1", 0.5);
  tc.omega2 = config.GetDoubleOr("omega2", 0.0);
  tc.requests_per_trustor = static_cast<std::size_t>(
      config.GetIntOr("requests_per_trustor", 3));
  tc.use_features = config.GetBoolOr("use_features", false);
  SIOT_ASSIGN_OR_RETURN(tc.threads, ParseThreads(config));
  const sim::TransitivityResult result =
      sim::RunTransitivityExperiment(dataset, tc);
  TextTable table(StrFormat(
      "Transitivity (Figs. 9-12 setup) on %s, %zu characteristics",
      std::string(graph::SocialNetworkName(network)).c_str(),
      tc.world.characteristic_count));
  table.SetHeader(
      {"method", "success", "unavailable", "avg trustees"});
  for (const auto& method : result.methods) {
    table.AddRow(
        {std::string(trust::TransitivityMethodName(method.method)),
         FormatDouble(method.tally.success_rate(), 4),
         FormatDouble(method.tally.unavailable_rate(), 4),
         FormatDouble(method.avg_potential_trustees, 2)});
  }
  std::fputs(table.Render().c_str(), stdout);
  return Status::OK();
}

Status RunDelegation(const Config& config) {
  SIOT_ASSIGN_OR_RETURN(
      const graph::SocialNetwork network,
      ParseNetwork(config.GetStringOr("network", "facebook")));
  const graph::SocialDataset dataset = graph::LoadDataset(network);
  sim::DelegationResultsConfig dc;
  dc.seed = static_cast<std::uint64_t>(config.GetIntOr("seed", 2026));
  dc.iterations =
      static_cast<std::size_t>(config.GetIntOr("iterations", 3000));
  dc.beta = config.GetDoubleOr("beta", 0.9);
  SIOT_ASSIGN_OR_RETURN(dc.threads, ParseThreads(config));
  const sim::DelegationResultsOutcome outcome =
      sim::RunDelegationResultsExperiment(dataset, dc);
  TextTable table(StrFormat(
      "Delegation results (Fig. 13 setup) on %s, beta=%.2f",
      std::string(graph::SocialNetworkName(network)).c_str(), dc.beta));
  table.SetHeader({"strategy", "final net profit"});
  for (const auto& strategy : outcome.strategies) {
    table.AddRow(
        {strategy.strategy == trust::SelectionStrategy::kMaxNetProfit
             ? "second (Eq. 23)"
             : "first (max success rate)",
         FormatDouble(strategy.final_profit, 4)});
  }
  std::fputs(table.Render().c_str(), stdout);
  return Status::OK();
}

Status RunEnvironment(const Config& config) {
  sim::EnvironmentTrackingConfig ec;
  ec.seed = static_cast<std::uint64_t>(config.GetIntOr("seed", 2026));
  ec.runs = static_cast<std::size_t>(config.GetIntOr("runs", 100));
  ec.beta = config.GetDoubleOr("beta", 0.9);
  ec.intrinsic_success_rate = config.GetDoubleOr("intrinsic", 0.8);
  const sim::EnvironmentTrackingResult result =
      sim::RunEnvironmentTrackingExperiment(ec);
  TextTable table("Environment tracking (Fig. 15 setup)");
  table.SetHeader(
      {"iteration", "expected", "no-env", "traditional", "proposed"});
  const std::size_t step =
      std::max<std::size_t>(result.iteration.size() / 10, 1);
  for (std::size_t t = 0; t < result.iteration.size(); t += step) {
    // Always include the final (converged) iteration Fig. 15 cares about.
    if (t + step >= result.iteration.size()) t = result.iteration.size() - 1;
    table.AddRow({FormatDouble(result.iteration[t], 0),
                  FormatDouble(result.expected[t], 3),
                  FormatDouble(result.no_environment[t], 3),
                  FormatDouble(result.traditional[t], 3),
                  FormatDouble(result.proposed[t], 3)});
  }
  std::fputs(table.Render().c_str(), stdout);
  return Status::OK();
}

// One serve-mode run: `threads` workers drive delegation + outcome-report
// batches against a sharded TrustService over the dataset's neighbor
// lists, with a per-trustor RNG stream. Returns requests served, elapsed
// seconds, and an order-independent digest for the determinism check.
struct ServeRun {
  std::size_t requests = 0;
  double seconds = 0.0;
  std::uint64_t digest = 0;
  std::size_t records = 0;
};

ServeRun RunServeWorkload(const graph::SocialDataset& dataset,
                          std::size_t shards, std::size_t threads,
                          std::size_t rounds, std::uint64_t seed) {
  service::TrustServiceConfig sc;
  sc.shard_count = shards;
  sc.engine.beta = trust::ForgettingFactors::Uniform(0.2);
  service::TrustService svc(sc);
  const trust::TaskId task = svc.RegisterTask("sense", {0}).value();
  const std::size_t trustors = dataset.graph.node_count();
  for (trust::AgentId agent = 0; agent < trustors; agent += 13) {
    svc.SetReverseThreshold(agent, trust::kNoTask, 0.75);
  }

  std::vector<std::uint64_t> digests(trustors, 0);
  std::atomic<std::size_t> requests{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  for (std::size_t w = 0; w < threads; ++w) {
    pool.emplace_back([&, w] {
      const std::size_t chunk = trustors / threads;
      const std::size_t begin = w * chunk;
      const std::size_t end = w + 1 == threads ? trustors : begin + chunk;
      std::vector<Rng> streams;
      for (std::size_t t = begin; t < end; ++t) {
        streams.push_back(sim::DeriveStream(seed, t));
      }
      std::size_t served = 0;
      for (std::size_t round = 0; round < rounds; ++round) {
        std::vector<service::DelegationServiceRequest> batch;
        std::vector<std::size_t> owners;
        for (std::size_t t = begin; t < end; ++t) {
          const auto neighbors =
              dataset.graph.Neighbors(static_cast<graph::NodeId>(t));
          if (neighbors.empty()) continue;
          service::DelegationServiceRequest request;
          request.trustor = static_cast<trust::AgentId>(t);
          request.task = task;
          request.candidates.assign(neighbors.begin(), neighbors.end());
          owners.push_back(t);
          batch.push_back(std::move(request));
        }
        const auto results = svc.BatchRequestDelegation(batch).value();
        std::vector<service::OutcomeReport> reports;
        for (std::size_t i = 0; i < batch.size(); ++i) {
          const std::size_t t = owners[i];
          digests[t] = digests[t] * 31 +
                       (results[i].trustee == trust::kNoAgent
                            ? 0xFFFFu
                            : results[i].trustee);
          Rng& rng = streams[t - begin];
          service::OutcomeReport report;
          report.trustor = batch[i].trustor;
          report.trustee = results[i].trustee != trust::kNoAgent
                               ? results[i].trustee
                               : batch[i].candidates.front();
          report.task = task;
          report.outcome.success = rng.Bernoulli(0.7);
          report.outcome.gain = report.outcome.success ? 0.8 : 0.0;
          report.outcome.damage = report.outcome.success ? 0.0 : 0.4;
          report.outcome.cost = 0.1;
          report.trustor_was_abusive = rng.Bernoulli(0.1);
          reports.push_back(report);
        }
        SIOT_CHECK(svc.BatchReportOutcome(reports).ok());
        served += 2 * batch.size();
      }
      requests.fetch_add(served, std::memory_order_relaxed);
    });
  }
  for (std::thread& worker : pool) worker.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  ServeRun run;
  run.seconds = std::chrono::duration<double>(elapsed).count();
  run.requests = requests.load();
  for (std::size_t t = 0; t < trustors; ++t) {
    run.digest ^= digests[t] * 0x9E3779B97F4A7C15ull + t;
  }
  run.records = svc.Stats().record_count;
  return run;
}

Status RunServe(const Config& config) {
  SIOT_ASSIGN_OR_RETURN(
      const graph::SocialNetwork network,
      ParseNetwork(config.GetStringOr("network", "facebook")));
  const graph::SocialDataset dataset = graph::LoadDataset(network);
  // Negative values would be cast to huge std::size_t counts (the same
  // hazard ParseThreads guards for threads), so range-check first.
  const std::int64_t raw_shards = config.GetIntOr("shards", 8);
  const std::int64_t raw_rounds = config.GetIntOr("rounds", 2);
  if (raw_shards < 1 || raw_shards > 4096) {
    return Status::InvalidArgument("shards out of range [1, 4096]");
  }
  if (raw_rounds < 1 || raw_rounds > 1000000) {
    return Status::InvalidArgument("rounds out of range [1, 1000000]");
  }
  const auto shards = static_cast<std::size_t>(raw_shards);
  const auto rounds = static_cast<std::size_t>(raw_rounds);
  const auto seed = static_cast<std::uint64_t>(config.GetIntOr("seed", 2026));
  SIOT_ASSIGN_OR_RETURN(std::size_t threads, ParseThreads(config));
  if (threads == 0) {
    threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }

  const ServeRun reference =
      RunServeWorkload(dataset, shards, 1, rounds, seed);
  TextTable table(StrFormat(
      "TrustService serve smoke on %s (%zu shards, %zu rounds)",
      std::string(graph::SocialNetworkName(network)).c_str(), shards,
      rounds));
  table.SetHeader(
      {"threads", "requests", "ms", "req/s", "identical to 1-thread"});
  const auto add_row = [&table](std::size_t t, const ServeRun& run,
                                const char* identical) {
    table.AddRow({StrFormat("%zu", t), StrFormat("%zu", run.requests),
                  FormatDouble(run.seconds * 1e3, 1),
                  FormatDouble(static_cast<double>(run.requests) /
                                   std::max(run.seconds, 1e-9),
                               0),
                  identical});
  };
  add_row(1, reference, "-");
  bool identical = true;
  if (threads > 1) {
    const ServeRun run =
        RunServeWorkload(dataset, shards, threads, rounds, seed);
    identical = run.digest == reference.digest &&
                run.records == reference.records;
    add_row(threads, run, identical ? "yes" : "NO — BUG");
  }
  std::fputs(table.Render().c_str(), stdout);
  // The determinism check is the point of this smoke path: a divergent
  // multi-threaded run must fail the process (and with it the smoke_serve
  // CTest and the TSan CI job), not just print a sad table cell.
  if (!identical) {
    return Status::Internal(StrFormat(
        "serve run with %zu threads diverged from the 1-thread reference",
        threads));
  }
  return Status::OK();
}

// Persist mode: a durable TrustService is driven through `rounds`
// rounds of delegation + outcome batches, with a full process-style
// RESTART (close + recover from checkpoint + WAL) between rounds; an
// in-memory reference service runs the identical workload without
// restarts. After every recovery the per-shard engine states must match
// the reference byte for byte — the restart literally may not change a
// thing.
Status RunPersist(const Config& config) {
  const std::int64_t raw_shards = config.GetIntOr("shards", 4);
  const std::int64_t raw_rounds = config.GetIntOr("rounds", 3);
  const std::int64_t raw_agents = config.GetIntOr("agents", 48);
  if (raw_shards < 1 || raw_shards > 4096) {
    return Status::InvalidArgument("shards out of range [1, 4096]");
  }
  if (raw_rounds < 1 || raw_rounds > 100000) {
    return Status::InvalidArgument("rounds out of range [1, 100000]");
  }
  if (raw_agents < 4 || raw_agents > 1000000) {
    return Status::InvalidArgument("agents out of range [4, 1000000]");
  }
  const auto shards = static_cast<std::size_t>(raw_shards);
  const auto rounds = static_cast<std::size_t>(raw_rounds);
  const auto agents = static_cast<trust::AgentId>(raw_agents);
  const auto seed =
      static_cast<std::uint64_t>(config.GetIntOr("seed", 2026));
  const bool user_dir = config.Has("dir");
  const std::string dir = config.GetStringOr(
      "dir", (std::filesystem::temp_directory_path() /
              ("siot_persist_" + std::to_string(seed)))
                 .string());
  // The run needs a fresh directory (recovering pre-existing state would
  // make the reference comparison meaningless), but never delete a
  // user-named path on our own initiative: require an explicit wipe=1.
  if (user_dir && std::filesystem::exists(dir) &&
      !std::filesystem::is_empty(dir)) {
    if (!config.GetBoolOr("wipe", false)) {
      return Status::InvalidArgument(
          "dir=" + dir +
          " already exists and is not empty; pass wipe=1 to let the "
          "persist experiment DELETE it and start fresh");
    }
    std::filesystem::remove_all(dir);
  }
  if (!user_dir) std::filesystem::remove_all(dir);

  service::TrustServiceConfig sc;
  sc.shard_count = shards;
  sc.engine.beta = trust::ForgettingFactors::Uniform(0.2);
  service::PersistenceOptions options;
  options.directory = dir;
  options.sync_every_append = config.GetBoolOr("fsync", false);
  options.checkpoint_every_appends = static_cast<std::size_t>(
      config.GetIntOr("checkpoint_every", 32));

  // Reference: identical workload, no persistence, no restarts.
  service::TrustService reference(sc);
  SIOT_ASSIGN_OR_RETURN(const trust::TaskId task,
                        reference.RegisterTask("sense", {0}));
  {
    SIOT_ASSIGN_OR_RETURN(auto service,
                          service::TrustService::Open(sc, options));
    SIOT_ASSIGN_OR_RETURN(const trust::TaskId replica,
                          service->RegisterTask("sense", {0}));
    SIOT_CHECK(replica == task);
    for (trust::AgentId agent = 0; agent < agents; agent += 7) {
      SIOT_RETURN_IF_ERROR(
          service->SetReverseThreshold(agent, trust::kNoTask, 0.75));
      reference.SetReverseThreshold(agent, trust::kNoTask, 0.75);
    }
  }

  std::vector<Rng> streams;
  std::vector<Rng> reference_streams;
  for (trust::AgentId t = 0; t < agents; ++t) {
    streams.push_back(sim::DeriveStream(seed, t));
    reference_streams.push_back(sim::DeriveStream(seed, t));
  }
  const auto drive_round =
      [&](service::TrustService* svc,
          std::vector<Rng>& rngs) -> StatusOr<std::size_t> {
    std::vector<service::DelegationServiceRequest> requests;
    for (trust::AgentId t = 0; t < agents; ++t) {
      service::DelegationServiceRequest request;
      request.trustor = t;
      request.task = task;
      request.candidates = {(t + 1) % agents, (t + 2) % agents,
                            (t + 3) % agents};
      requests.push_back(std::move(request));
    }
    SIOT_ASSIGN_OR_RETURN(const auto results,
                          svc->BatchRequestDelegation(requests));
    std::vector<service::OutcomeReport> reports;
    for (trust::AgentId t = 0; t < agents; ++t) {
      Rng& rng = rngs[t];
      service::OutcomeReport report;
      report.trustor = t;
      report.trustee = results[t].trustee != trust::kNoAgent
                           ? results[t].trustee
                           : requests[t].candidates.front();
      report.task = task;
      report.outcome.success = rng.Bernoulli(0.7);
      report.outcome.gain = report.outcome.success ? 0.8 : 0.0;
      report.outcome.damage = report.outcome.success ? 0.0 : 0.4;
      report.outcome.cost = 0.1;
      report.trustor_was_abusive = rng.Bernoulli(0.1);
      reports.push_back(report);
    }
    SIOT_RETURN_IF_ERROR(svc->BatchReportOutcome(reports));
    return 2 * requests.size();
  };

  TextTable table(StrFormat(
      "Durable TrustService restart smoke (%zu shards, %zu agents, "
      "fsync=%s)",
      shards, static_cast<std::size_t>(agents),
      options.sync_every_append ? "on" : "off"));
  table.SetHeader(
      {"round", "recover ms", "requests", "records", "state identical"});
  bool all_identical = true;
  for (std::size_t round = 0; round < rounds; ++round) {
    // Restart: every round recovers the service from disk anew.
    const auto start = std::chrono::steady_clock::now();
    SIOT_ASSIGN_OR_RETURN(auto service,
                          service::TrustService::Open(sc, options));
    const double recover_ms =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count() *
        1e3;
    SIOT_ASSIGN_OR_RETURN(const std::size_t requests,
                          drive_round(service.get(), streams));
    SIOT_ASSIGN_OR_RETURN(const std::size_t reference_requests,
                          drive_round(&reference, reference_streams));
    SIOT_CHECK(requests == reference_requests);
    bool identical = true;
    for (std::size_t s = 0; s < shards; ++s) {
      if (trust::SerializeTrustEngineState(service->shard_engine(s)) !=
          trust::SerializeTrustEngineState(reference.shard_engine(s))) {
        identical = false;
      }
    }
    all_identical = all_identical && identical;
    table.AddRow({StrFormat("%zu", round), FormatDouble(recover_ms, 2),
                  StrFormat("%zu", requests),
                  StrFormat("%zu", service->Stats().record_count),
                  identical ? "yes" : "NO — BUG"});
  }
  std::fputs(table.Render().c_str(), stdout);
  if (!config.Has("dir")) std::filesystem::remove_all(dir);
  // Divergence must fail the process (and the smoke_persist CTest), not
  // just print a sad table cell.
  if (!all_identical) {
    return Status::Internal(
        "recovered state diverged from the in-memory reference");
  }
  return Status::OK();
}

// Deterministic social substrate for the service-level experiments: a
// ring over the agents, each linked to its 3 successors — exactly the
// candidate sets the replicate/persist workloads delegate over.
std::shared_ptr<const graph::Graph> BuildRingGraph(trust::AgentId agents) {
  graph::GraphBuilder builder(agents);
  for (trust::AgentId t = 0; t < agents; ++t) {
    for (trust::AgentId d = 1; d <= 3; ++d) {
      builder.AddEdge(t, (t + d) % agents);
    }
  }
  return std::make_shared<graph::Graph>(builder.Build());
}

// Replicate mode: a durable leader is driven through `rounds` rounds of
// delegation + outcome batches while a WAL-tailing follower catches up
// after each round; follower state must match the leader byte for byte
// at every synchronized position. Then the leader is killed and the
// follower PROMOTES: it must fence the directory, keep every
// acknowledged write, and serve writes of its own — the full failover
// story in one smoke run.
Status RunReplicate(const Config& config) {
  const std::int64_t raw_shards = config.GetIntOr("shards", 4);
  const std::int64_t raw_rounds = config.GetIntOr("rounds", 3);
  const std::int64_t raw_agents = config.GetIntOr("agents", 48);
  if (raw_shards < 1 || raw_shards > 4096) {
    return Status::InvalidArgument("shards out of range [1, 4096]");
  }
  if (raw_rounds < 1 || raw_rounds > 100000) {
    return Status::InvalidArgument("rounds out of range [1, 100000]");
  }
  if (raw_agents < 4 || raw_agents > 1000000) {
    return Status::InvalidArgument("agents out of range [4, 1000000]");
  }
  const auto shards = static_cast<std::size_t>(raw_shards);
  const auto rounds = static_cast<std::size_t>(raw_rounds);
  const auto agents = static_cast<trust::AgentId>(raw_agents);
  const auto seed =
      static_cast<std::uint64_t>(config.GetIntOr("seed", 2026));
  const bool user_dir = config.Has("dir");
  const std::string dir = config.GetStringOr(
      "dir", (std::filesystem::temp_directory_path() /
              ("siot_replicate_" + std::to_string(seed)))
                 .string());
  if (user_dir && std::filesystem::exists(dir) &&
      !std::filesystem::is_empty(dir)) {
    if (!config.GetBoolOr("wipe", false)) {
      return Status::InvalidArgument(
          "dir=" + dir +
          " already exists and is not empty; pass wipe=1 to let the "
          "replicate experiment DELETE it and start fresh");
    }
    std::filesystem::remove_all(dir);
  }
  if (!user_dir) std::filesystem::remove_all(dir);

  service::TrustServiceConfig sc;
  sc.shard_count = shards;
  sc.engine.beta = trust::ForgettingFactors::Uniform(0.2);
  service::PersistenceOptions options;
  options.directory = dir;
  options.checkpoint_every_appends = static_cast<std::size_t>(
      config.GetIntOr("checkpoint_every", 64));

  SIOT_ASSIGN_OR_RETURN(auto leader,
                        service::TrustService::Open(sc, options));
  SIOT_ASSIGN_OR_RETURN(const trust::TaskId task,
                        leader->RegisterTask("sense", {0}));
  for (trust::AgentId agent = 0; agent < agents; agent += 7) {
    SIOT_RETURN_IF_ERROR(
        leader->SetReverseThreshold(agent, trust::kNoTask, 0.75));
  }
  service::ReplicaOptions replica_options;
  replica_options.directory = dir;
  // Follower-served transitive reads ride along so the round summary can
  // show snapshot staleness next to replication lag.
  replica_options.overlay_graph = BuildRingGraph(agents);
  replica_options.transitivity.max_hops = 4;
  replica_options.transitivity.omega2 = 0.0;
  SIOT_ASSIGN_OR_RETURN(auto replica,
                        service::ReplicaService::Open(sc, replica_options));

  std::vector<Rng> streams;
  for (trust::AgentId t = 0; t < agents; ++t) {
    streams.push_back(sim::DeriveStream(seed, t));
  }
  const auto drive_round = [&](service::TrustService* svc)
      -> StatusOr<std::size_t> {
    std::vector<service::DelegationServiceRequest> requests;
    for (trust::AgentId t = 0; t < agents; ++t) {
      service::DelegationServiceRequest request;
      request.trustor = t;
      request.task = task;
      request.candidates = {(t + 1) % agents, (t + 2) % agents,
                            (t + 3) % agents};
      requests.push_back(std::move(request));
    }
    SIOT_ASSIGN_OR_RETURN(const auto results,
                          svc->BatchRequestDelegation(requests));
    std::vector<service::OutcomeReport> reports;
    for (trust::AgentId t = 0; t < agents; ++t) {
      Rng& rng = streams[t];
      service::OutcomeReport report;
      report.trustor = t;
      report.trustee = results[t].trustee != trust::kNoAgent
                           ? results[t].trustee
                           : requests[t].candidates.front();
      report.task = task;
      report.outcome.success = rng.Bernoulli(0.7);
      report.outcome.gain = report.outcome.success ? 0.8 : 0.0;
      report.outcome.damage = report.outcome.success ? 0.0 : 0.4;
      report.outcome.cost = 0.1;
      report.trustor_was_abusive = rng.Bernoulli(0.1);
      reports.push_back(report);
    }
    SIOT_RETURN_IF_ERROR(svc->BatchReportOutcome(reports));
    return 2 * requests.size();
  };
  const auto states_of = [&](const auto& svc) {
    std::vector<std::string> states;
    for (std::size_t s = 0; s < shards; ++s) {
      states.push_back(
          trust::SerializeTrustEngineState(svc.shard_engine(s)));
    }
    return states;
  };

  TextTable table(StrFormat(
      "WAL-tailing replication smoke (%zu shards, %zu agents)", shards,
      static_cast<std::size_t>(agents)));
  table.SetHeader({"round", "requests", "catch-up ms", "records",
                   "seq lag", "byte lag", "snap age ms",
                   "follower identical"});
  bool all_identical = true;
  for (std::size_t round = 0; round < rounds; ++round) {
    SIOT_ASSIGN_OR_RETURN(const std::size_t requests,
                          drive_round(leader.get()));
    const auto start = std::chrono::steady_clock::now();
    SIOT_RETURN_IF_ERROR(replica->AwaitPositions(
        leader->WalPositions(), std::chrono::milliseconds(10000)));
    const double catch_up_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    // Staleness evidence for both read paths: per-shard replication lag
    // (summed) and the age of the follower-served overlay snapshot.
    SIOT_RETURN_IF_ERROR(replica->BuildOverlaySnapshot());
    std::uint64_t seq_lag = 0;
    std::uint64_t byte_lag = 0;
    for (const service::ShardReplicationLag& lag :
         replica->ReplicationLag()) {
      seq_lag += lag.seq_lag;
      byte_lag += lag.byte_lag;
    }
    const service::OverlaySnapshotInfo overlay = replica->OverlayInfo();
    const bool identical = states_of(*leader) == states_of(*replica);
    all_identical = all_identical && identical;
    table.AddRow(
        {StrFormat("%zu", round), StrFormat("%zu", requests),
         FormatDouble(catch_up_ms, 2),
         StrFormat("%zu", replica->Stats().record_count),
         StrFormat("%llu", static_cast<unsigned long long>(seq_lag)),
         StrFormat("%llu", static_cast<unsigned long long>(byte_lag)),
         StrFormat("%lld",
                   static_cast<long long>(overlay.age.count())),
         identical ? "yes" : "NO — BUG"});
  }

  // Failover: kill the leader, promote the follower, and prove the
  // promoted service kept every acknowledged write and accepts new ones.
  const std::vector<std::string> acknowledged = states_of(*leader);
  leader.reset();
  const auto promote_start = std::chrono::steady_clock::now();
  SIOT_ASSIGN_OR_RETURN(auto promoted, replica->Promote(options));
  const double promote_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - promote_start)
          .count();
  const bool promote_identical = states_of(*promoted) == acknowledged;
  all_identical = all_identical && promote_identical;
  SIOT_ASSIGN_OR_RETURN(const std::size_t post_requests,
                        drive_round(promoted.get()));
  table.AddRow({"promote", StrFormat("%zu", post_requests),
                FormatDouble(promote_ms, 2),
                StrFormat("%zu", promoted->Stats().record_count), "-", "-",
                "-", promote_identical ? "yes" : "NO — BUG"});
  std::fputs(table.Render().c_str(), stdout);
  promoted.reset();
  if (!config.Has("dir")) std::filesystem::remove_all(dir);
  // Divergence must fail the process (and the smoke_replicate CTest),
  // not just print a sad table cell.
  if (!all_identical) {
    return Status::Internal(
        "follower state diverged from the leader (or promote lost "
        "acknowledged writes)");
  }
  return Status::OK();
}

// Transit-serve mode: the follower-served transitive read path end to
// end. A durable leader takes outcome batches; a WAL-tailing follower
// catches up, freezes an overlay snapshot at the leader's exact WAL
// positions, and serves transitive queries from it. Every round the
// follower's snapshot is byte-compared against one built from a
// single-threaded, unsharded reference engine driven with the identical
// ops — the sharded/replicated/snapshot pipeline must change NOTHING —
// and a batch of queries is answered both ways and compared
// result-for-result. Divergence fails the process.
Status RunTransitServe(const Config& config) {
  const std::int64_t raw_shards = config.GetIntOr("shards", 4);
  const std::int64_t raw_rounds = config.GetIntOr("rounds", 3);
  const std::int64_t raw_agents = config.GetIntOr("agents", 64);
  const std::int64_t raw_tasks = config.GetIntOr("tasks", 3);
  const std::int64_t raw_chars = config.GetIntOr("characteristics", 4);
  const std::int64_t raw_queries = config.GetIntOr("queries", 8);
  if (raw_shards < 1 || raw_shards > 4096) {
    return Status::InvalidArgument("shards out of range [1, 4096]");
  }
  if (raw_rounds < 1 || raw_rounds > 100000) {
    return Status::InvalidArgument("rounds out of range [1, 100000]");
  }
  if (raw_agents < 4 || raw_agents > 1000000) {
    return Status::InvalidArgument("agents out of range [4, 1000000]");
  }
  if (raw_tasks < 1 || raw_tasks > 64) {
    return Status::InvalidArgument("tasks out of range [1, 64]");
  }
  if (raw_chars < 1 || raw_chars > 32) {
    return Status::InvalidArgument("characteristics out of range [1, 32]");
  }
  if (raw_queries < 0 || raw_queries > 100000) {
    return Status::InvalidArgument("queries out of range [0, 100000]");
  }
  const auto shards = static_cast<std::size_t>(raw_shards);
  const auto rounds = static_cast<std::size_t>(raw_rounds);
  const auto agents = static_cast<trust::AgentId>(raw_agents);
  const auto task_count = static_cast<std::size_t>(raw_tasks);
  const auto characteristic_count = static_cast<std::size_t>(raw_chars);
  const auto queries = static_cast<std::size_t>(raw_queries);
  const auto seed =
      static_cast<std::uint64_t>(config.GetIntOr("seed", 2026));
  const bool user_dir = config.Has("dir");
  const std::string dir = config.GetStringOr(
      "dir", (std::filesystem::temp_directory_path() /
              ("siot_transit_" + std::to_string(seed)))
                 .string());
  if (user_dir && std::filesystem::exists(dir) &&
      !std::filesystem::is_empty(dir)) {
    if (!config.GetBoolOr("wipe", false)) {
      return Status::InvalidArgument(
          "dir=" + dir +
          " already exists and is not empty; pass wipe=1 to let the "
          "transit_serve experiment DELETE it and start fresh");
    }
    std::filesystem::remove_all(dir);
  }
  if (!user_dir) std::filesystem::remove_all(dir);

  service::TrustServiceConfig sc;
  sc.shard_count = shards;
  sc.engine.beta = trust::ForgettingFactors::Uniform(0.2);
  service::PersistenceOptions options;
  options.directory = dir;
  options.checkpoint_every_appends = static_cast<std::size_t>(
      config.GetIntOr("checkpoint_every", 64));

  trust::TransitivityParams params;
  params.omega1 = config.GetDoubleOr("omega1", 0.5);
  params.omega2 = config.GetDoubleOr("omega2", 0.0);
  params.max_hops =
      static_cast<std::size_t>(config.GetIntOr("max_hops", 4));

  SIOT_ASSIGN_OR_RETURN(auto leader,
                        service::TrustService::Open(sc, options));
  // The oracle: one unsharded engine fed the identical op stream.
  trust::TrustEngine reference(sc.engine);
  for (std::size_t j = 0; j < task_count; ++j) {
    std::vector<trust::CharacteristicId> chars = {
        static_cast<trust::CharacteristicId>(j % characteristic_count)};
    const auto second = static_cast<trust::CharacteristicId>(
        (j + 1) % characteristic_count);
    if (second != chars.front()) chars.push_back(second);
    const std::string name = StrFormat("task%zu", j);
    SIOT_ASSIGN_OR_RETURN(const trust::TaskId leader_id,
                          leader->RegisterTask(name, chars));
    SIOT_ASSIGN_OR_RETURN(const trust::TaskId reference_id,
                          reference.catalog().AddUniform(name, chars));
    SIOT_CHECK(leader_id == reference_id);
  }

  const std::shared_ptr<const graph::Graph> social = BuildRingGraph(agents);
  service::ReplicaOptions replica_options;
  replica_options.directory = dir;
  replica_options.overlay_graph = social;
  replica_options.transitivity = params;
  SIOT_ASSIGN_OR_RETURN(auto replica,
                        service::ReplicaService::Open(sc, replica_options));

  std::vector<Rng> streams;
  for (trust::AgentId t = 0; t < agents; ++t) {
    streams.push_back(sim::DeriveStream(seed, t));
  }
  // One rng stream per trustor decides every op ONCE; the decisions are
  // applied to leader and reference alike, so the two see the same
  // per-pair op order — the invariant the byte comparison rests on.
  const auto drive_round = [&]() -> StatusOr<std::size_t> {
    std::vector<service::OutcomeReport> reports;
    for (trust::AgentId t = 0; t < agents; ++t) {
      Rng& rng = streams[t];
      service::OutcomeReport report;
      report.trustor = t;
      report.trustee = static_cast<trust::AgentId>(
          (t + 1 + static_cast<trust::AgentId>(rng.UniformInt(0, 2))) %
          agents);
      report.task = static_cast<trust::TaskId>(
          rng.UniformInt(0, static_cast<std::int64_t>(task_count) - 1));
      report.outcome.success = rng.Bernoulli(0.7);
      report.outcome.gain = report.outcome.success ? 0.8 : 0.0;
      report.outcome.damage = report.outcome.success ? 0.0 : 0.4;
      report.outcome.cost = 0.1;
      report.trustor_was_abusive = rng.Bernoulli(0.1);
      reports.push_back(report);
    }
    SIOT_RETURN_IF_ERROR(leader->BatchReportOutcome(reports));
    for (const service::OutcomeReport& report : reports) {
      reference.ReportOutcome(report.trustor, report.trustee, report.task,
                              report.outcome, report.trustor_was_abusive);
    }
    return reports.size();
  };

  Rng query_rng = sim::DeriveStream(seed, agents + 1);
  constexpr trust::TransitivityMethod kMethods[] = {
      trust::TransitivityMethod::kTraditional,
      trust::TransitivityMethod::kConservative,
      trust::TransitivityMethod::kAggressive,
  };

  TextTable table(StrFormat(
      "Follower-served transitivity (%zu shards, %zu agents, %zu tasks)",
      shards, static_cast<std::size_t>(agents), task_count));
  table.SetHeader({"round", "ops", "catch-up ms", "assembly ms", "version",
                   "queries", "snapshot+queries identical"});
  bool all_identical = true;
  for (std::size_t round = 0; round < rounds; ++round) {
    SIOT_ASSIGN_OR_RETURN(const std::size_t ops, drive_round());
    const std::vector<service::ShardWalPosition> positions =
        leader->WalPositions();
    const auto start = std::chrono::steady_clock::now();
    SIOT_RETURN_IF_ERROR(replica->AwaitPositions(
        positions, std::chrono::milliseconds(10000)));
    const double catch_up_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    SIOT_RETURN_IF_ERROR(replica->BuildOverlaySnapshot());

    // The follower quiesced at the leader's exact WAL positions, so the
    // snapshot's version vector must equal them — and the snapshot bytes
    // must equal a reference build at that same version.
    trust::SnapshotVersion version;
    for (const service::ShardWalPosition& position : positions) {
      version.applied_seq.push_back(position.last_seq);
    }
    const std::shared_ptr<const trust::VersionedOverlaySnapshot>
        follower_snapshot = replica->CurrentOverlaySnapshot();
    SIOT_CHECK(follower_snapshot != nullptr);
    bool identical = follower_snapshot->version() == version;
    const trust::StoreTrustOverlay reference_overlay(reference.store(),
                                                     reference.normalizer());
    const trust::VersionedOverlaySnapshot reference_snapshot(
        social, reference.catalog(), reference_overlay, version);
    identical = identical &&
                trust::SerializeOverlaySnapshot(*follower_snapshot) ==
                    trust::SerializeOverlaySnapshot(reference_snapshot);

    // Query equivalence: the follower's sealed snapshot search against a
    // live-overlay search over the reference engine, across all three
    // §4.3 methods.
    const trust::TransitivitySearch reference_search(
        *social, reference.catalog(), reference_overlay, params);
    for (std::size_t q = 0; q < queries; ++q) {
      service::TransitiveTrustRequest request;
      request.trustor = static_cast<trust::AgentId>(query_rng.UniformInt(
          0, static_cast<std::int64_t>(agents) - 1));
      request.task = static_cast<trust::TaskId>(query_rng.UniformInt(
          0, static_cast<std::int64_t>(task_count) - 1));
      request.method = kMethods[q % 3];
      SIOT_ASSIGN_OR_RETURN(const service::TransitiveTrustResult answer,
                            replica->TransitiveTrust(request));
      identical = identical && answer.version == version;
      const trust::TransitivityResult expected =
          reference_search.FindPotentialTrustees(
              request.trustor, reference.catalog().Get(request.task),
              request.method);
      if (answer.result.trustees.size() != expected.trustees.size()) {
        identical = false;
        continue;
      }
      for (std::size_t i = 0; i < expected.trustees.size(); ++i) {
        const trust::PotentialTrustee& got = answer.result.trustees[i];
        const trust::PotentialTrustee& want = expected.trustees[i];
        if (got.agent != want.agent ||
            got.trustworthiness != want.trustworthiness ||
            got.per_characteristic != want.per_characteristic) {
          identical = false;
        }
      }
    }
    all_identical = all_identical && identical;
    const service::OverlaySnapshotInfo info = replica->OverlayInfo();
    table.AddRow(
        {StrFormat("%zu", round), StrFormat("%zu", ops),
         FormatDouble(catch_up_ms, 2),
         StrFormat("%lld",
                   static_cast<long long>(info.last_assembly_cost.count())),
         trust::FormatSnapshotVersion(version),
         StrFormat("%zu", queries), identical ? "yes" : "NO — BUG"});
  }
  std::fputs(table.Render().c_str(), stdout);
  replica.reset();
  leader.reset();
  if (!config.Has("dir")) std::filesystem::remove_all(dir);
  // Divergence must fail the process (and the smoke_transit_serve CTest),
  // not just print a sad table cell.
  if (!all_identical) {
    return Status::Internal(
        "follower-served snapshot or query answers diverged from the "
        "single-engine reference");
  }
  return Status::OK();
}

// Attack mode: each configured adversary fraction runs the selected
// attack twice — once against an in-memory TrustService with a 1-thread
// runner (the reference), once against a DURABLE TrustService
// (WAL + checkpoints + optional group commit, exercised under the
// adversarial write pattern) with the configured thread count. The two
// runs must produce bit-identical resilience tables and serialized
// shard states; the per-round resilience table and a cross-fraction
// summary are printed.
Status RunAttack(const Config& config) {
  const std::int64_t raw_agents = config.GetIntOr("agents", 64);
  const std::int64_t raw_rounds = config.GetIntOr("rounds", 20);
  const std::int64_t raw_shards = config.GetIntOr("shards", 8);
  const std::int64_t raw_candidates = config.GetIntOr("candidates", 8);
  if (raw_agents < 8 || raw_agents > 100000) {
    return Status::InvalidArgument("agents out of range [8, 100000]");
  }
  if (raw_rounds < 1 || raw_rounds > 10000) {
    return Status::InvalidArgument("rounds out of range [1, 10000]");
  }
  if (raw_shards < 1 || raw_shards > 4096) {
    return Status::InvalidArgument("shards out of range [1, 4096]");
  }
  if (raw_candidates < 1 || raw_candidates > 256) {
    return Status::InvalidArgument("candidates out of range [1, 256]");
  }
  SIOT_ASSIGN_OR_RETURN(const std::size_t threads, ParseThreads(config));
  const std::string attack_name =
      ToLower(config.GetStringOr("attack", "onoff"));
  const std::optional<sim::AttackType> attack =
      sim::ParseAttackType(attack_name);
  if (!attack.has_value()) {
    return Status::InvalidArgument(
        "unknown attack '" + attack_name +
        "' (none|onoff|badmouth|whitewash|collusion)");
  }
  std::vector<double> fractions;
  for (const std::string& token :
       Split(config.GetStringOr("fractions", "0.1,0.3"), ',')) {
    SIOT_ASSIGN_OR_RETURN(const double fraction, ParseDouble(token));
    if (fraction < 0.0 || fraction > 1.0) {
      return Status::InvalidArgument("fractions entries must be in [0, 1]");
    }
    fractions.push_back(fraction);
  }
  if (fractions.empty() || fractions.size() > 16) {
    return Status::InvalidArgument("fractions needs 1-16 entries");
  }
  const auto seed = static_cast<std::uint64_t>(config.GetIntOr("seed", 2026));

  const bool user_dir = config.Has("dir");
  const std::string dir = config.GetStringOr(
      "dir", (std::filesystem::temp_directory_path() /
              ("siot_attack_" + std::to_string(seed)))
                 .string());
  if (user_dir && std::filesystem::exists(dir) &&
      !std::filesystem::is_empty(dir)) {
    if (!config.GetBoolOr("wipe", false)) {
      return Status::InvalidArgument(
          "dir=" + dir +
          " already exists and is not empty; pass wipe=1 to let the "
          "attack experiment DELETE it and start fresh");
    }
    std::filesystem::remove_all(dir);
  }
  if (!user_dir) std::filesystem::remove_all(dir);

  sim::AttackSimConfig acfg;
  acfg.agents = static_cast<std::size_t>(raw_agents);
  acfg.rounds = static_cast<std::size_t>(raw_rounds);
  acfg.shard_count = static_cast<std::size_t>(raw_shards);
  acfg.candidates_per_trustor = static_cast<std::size_t>(raw_candidates);
  acfg.theta = config.GetDoubleOr("theta", 0.5);
  acfg.detect_percentile = config.GetDoubleOr("detect_percentile", 0.25);
  acfg.seed = seed;
  acfg.attack.type = *attack;

  TextTable summary(StrFormat(
      "Attack summary: %s (%zu agents, %zu rounds, %zu shards, "
      "%zu threads durable vs 1-thread in-memory)",
      sim::AttackTypeName(*attack), acfg.agents, acfg.rounds,
      acfg.shard_count, threads == 0 ? 0 : threads));
  summary.SetHeader({"fraction", "misdeleg", "unavail", "abuse", "honest tw",
                     "attacker tw", "detect round", "ww", "recovery",
                     "durable identical"});
  bool all_identical = true;
  for (std::size_t index = 0; index < fractions.size(); ++index) {
    acfg.attack.adversary_fraction = fractions[index];
    const service::TrustServiceConfig sc = sim::AttackServiceConfig(acfg);

    sim::AttackSimConfig reference_config = acfg;
    reference_config.threads = 1;
    sim::AttackSimResult reference;
    {
      service::TrustService memory(sc);
      SIOT_ASSIGN_OR_RETURN(reference,
                            sim::RunAttackSimulation(memory, reference_config));
    }

    sim::AttackSimConfig durable_config = acfg;
    durable_config.threads = threads;
    const std::string fraction_dir = dir + "/f" + std::to_string(index);
    std::filesystem::remove_all(fraction_dir);
    service::PersistenceOptions options;
    options.directory = fraction_dir;
    options.sync_every_append = config.GetBoolOr("fsync", false);
    options.checkpoint_every_appends =
        static_cast<std::size_t>(config.GetIntOr("checkpoint_every", 64));
    sim::AttackSimResult durable;
    {
      SIOT_ASSIGN_OR_RETURN(auto service,
                            service::TrustService::Open(sc, options));
      SIOT_ASSIGN_OR_RETURN(durable,
                            sim::RunAttackSimulation(*service, durable_config));
    }
    const bool identical = durable == reference;
    all_identical = all_identical && identical;

    TextTable table(StrFormat(
        "Adversarial resilience: %s, adversary fraction %s (durable path)",
        sim::AttackTypeName(*attack),
        FormatDouble(fractions[index], 2).c_str()));
    table.SetHeader({"round", "misdeleg", "unavail", "abuse", "honest tw",
                     "attacker tw", "detected", "ww"});
    for (const sim::ResilienceRoundMetrics& row : durable.rounds) {
      table.AddRow({StrFormat("%zu", row.round),
                    FormatDouble(row.misdelegation_rate, 3),
                    FormatDouble(row.unavailable_rate, 3),
                    FormatDouble(row.abuse_rate, 3),
                    FormatDouble(row.honest_mean_trust, 3),
                    FormatDouble(row.attacker_mean_trust, 3),
                    row.attacker_detected ? "yes" : "no",
                    StrFormat("%zu", row.whitewashes)});
    }
    std::fputs(table.Render().c_str(), stdout);

    summary.AddRow(
        {FormatDouble(fractions[index], 2),
         FormatDouble(durable.misdelegation_rate, 3),
         FormatDouble(durable.unavailable_rate, 3),
         FormatDouble(durable.abuse_rate, 3),
         FormatDouble(durable.final_honest_trust, 3),
         FormatDouble(durable.final_attacker_trust, 3),
         durable.time_to_detect.has_value()
             ? StrFormat("%zu", *durable.time_to_detect)
             : "-",
         StrFormat("%zu", durable.whitewashes),
         durable.whitewash_recovery.has_value()
             ? FormatDouble(*durable.whitewash_recovery, 1)
             : "-",
         identical ? "yes" : "NO — BUG"});
  }
  std::fputs(summary.Render().c_str(), stdout);
  if (!config.Has("dir")) std::filesystem::remove_all(dir);
  // Divergence must fail the process (and the smoke_attack CTest), not
  // just print a sad table cell.
  if (!all_identical) {
    return Status::Internal(
        "durable attack run diverged from the in-memory 1-thread "
        "reference");
  }
  return Status::OK();
}

Status Run(int argc, char** argv) {
  // Accept both bare key=value tokens and GNU-style --key=value flags
  // (e.g. --threads=4): leading dashes are stripped before parsing.
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc - 1));
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    arg.erase(0, arg.find_first_not_of('-'));
    args.push_back(std::move(arg));
  }
  std::vector<const char*> arg_ptrs;
  arg_ptrs.reserve(args.size());
  for (const std::string& arg : args) arg_ptrs.push_back(arg.c_str());
  SIOT_ASSIGN_OR_RETURN(
      Config config,
      Config::FromArgs(static_cast<int>(arg_ptrs.size()), arg_ptrs.data()));
  if (config.Has("config")) {
    SIOT_ASSIGN_OR_RETURN(const std::string path,
                          config.GetString("config"));
    SIOT_ASSIGN_OR_RETURN(const Config from_file, Config::FromFile(path));
    // Command-line keys override file keys.
    Config merged = from_file;
    for (const auto& [key, value] : config.values()) {
      merged.Set(key, value);
    }
    config = merged;
  }
  const std::string experiment =
      ToLower(config.GetStringOr("experiment", ""));
  if (experiment == "mutuality") return RunMutuality(config);
  if (experiment == "transitivity") return RunTransitivity(config);
  if (experiment == "delegation") return RunDelegation(config);
  if (experiment == "environment") return RunEnvironment(config);
  if (experiment == "serve") return RunServe(config);
  if (experiment == "persist") return RunPersist(config);
  if (experiment == "replicate") return RunReplicate(config);
  if (experiment == "transit_serve") return RunTransitServe(config);
  if (experiment == "attack") return RunAttack(config);
  return Status::InvalidArgument(
      "usage: siot_experiments experiment=<mutuality|transitivity|"
      "delegation|environment|serve|persist|replicate|transit_serve|"
      "attack> [network=...] [seed=...] [--threads=N] [key=value...] "
      "[config=<file>]");
}

}  // namespace
}  // namespace siot

int main(int argc, char** argv) {
  const siot::Status status = siot::Run(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
