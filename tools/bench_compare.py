#!/usr/bin/env python3
# Copyright 2026 The siot-trust Authors.
"""Diffs two google-benchmark JSON artifacts (BENCH_*.json) and fails on
regression.

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json [--tolerance PCT]
                     [--metric items_per_second|real_time|cpu_time]

Compares every benchmark present in BOTH files by name (including the
arg/thread suffixes, e.g. "BM_DurableAppendScaling/1/real_time/threads:8").
For rate metrics (items_per_second) a candidate SLOWER by more than the
tolerance is a regression; for time metrics a candidate whose time GREW
past the tolerance is. A benchmark present in the baseline but MISSING
from the candidate fails the run: a silently dropped series is how a
perf gate rots (delete or rename the baseline entry to retire a series
deliberately). Benchmarks only in the candidate are new and merely
reported.

Exit status: 0 = no regression, 1 = at least one regression, 2 = bad
invocation or unparseable artifact (an unreadable artifact is worse than
a slow one).

stdlib only — CI runs this between artifact download and upload with no
virtualenv.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """benchmark-name -> entry dict, from a google-benchmark JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as fp:
            doc = json.load(fp)
    except (OSError, ValueError) as err:
        # Exit 2, per the contract above: callers treat "cannot even
        # read the artifact" as a harder failure than a regression.
        print(f"error: cannot parse {path}: {err}", file=sys.stderr)
        raise SystemExit(2)
    entries = {}
    for entry in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repeated runs): the
        # raw per-run rows carry run_type "iteration" (or no run_type in
        # older library versions).
        if entry.get("run_type", "iteration") != "iteration":
            continue
        entries[entry["name"]] = entry
    if not entries:
        print(f"error: {path} holds no benchmark entries", file=sys.stderr)
        raise SystemExit(2)
    return entries


def metric_of(entry, metric):
    value = entry.get(metric)
    return value if isinstance(value, (int, float)) and value > 0 else None


def main():
    parser = argparse.ArgumentParser(
        description="diff two BENCH_*.json artifacts, nonzero on regression"
    )
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=10.0,
        metavar="PCT",
        help="allowed slowdown in percent before a benchmark counts as "
        "regressed (default: %(default)s)",
    )
    parser.add_argument(
        "--metric",
        default="items_per_second",
        choices=["items_per_second", "real_time", "cpu_time"],
        help="which field to compare; benchmarks missing it fall back to "
        "real_time (default: %(default)s)",
    )
    args = parser.parse_args()
    if args.tolerance < 0:
        parser.error("--tolerance must be >= 0")

    baseline = load_benchmarks(args.baseline)
    candidate = load_benchmarks(args.candidate)

    regressions = []
    improvements = []
    compared = 0
    for name in sorted(baseline.keys() & candidate.keys()):
        metric = args.metric
        base = metric_of(baseline[name], metric)
        cand = metric_of(candidate[name], metric)
        if base is None or cand is None:
            # Not every benchmark reports items_per_second; time is
            # always there.
            metric = "real_time"
            base = metric_of(baseline[name], metric)
            cand = metric_of(candidate[name], metric)
        if base is None or cand is None:
            continue
        compared += 1
        # Normalize to "percent slower than baseline": for rates lower is
        # worse, for times higher is worse.
        if metric == "items_per_second":
            slower_pct = (base - cand) / base * 100.0
        else:
            slower_pct = (cand - base) / base * 100.0
        line = (
            f"{name}: {metric} {base:.6g} -> {cand:.6g} "
            f"({slower_pct:+.1f}% slower)"
        )
        if slower_pct > args.tolerance:
            regressions.append(line)
        elif slower_pct < -args.tolerance:
            improvements.append(line)

    only_base = sorted(baseline.keys() - candidate.keys())
    only_cand = sorted(candidate.keys() - baseline.keys())

    print(
        f"compared {compared} benchmarks "
        f"(tolerance {args.tolerance:g}%, metric {args.metric})"
    )
    for line in improvements:
        print(f"  improved:  {line}")
    for name in only_cand:
        print(f"  only in candidate: {name}")
    if only_base:
        # A series that stopped being produced is indistinguishable from
        # a series that regressed into a crash — fail loudly instead of
        # letting the gate shrink one rename at a time.
        print(f"MISSING FROM CANDIDATE ({len(only_base)}):")
        for name in only_base:
            print(f"  {name}")
    if regressions:
        print(f"REGRESSED ({len(regressions)}):")
        for line in regressions:
            print(f"  {line}")
        return 1
    if only_base:
        return 1
    if compared == 0:
        print("error: no benchmark appears in both files", file=sys.stderr)
        return 2
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
