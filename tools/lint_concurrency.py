#!/usr/bin/env python3
# Copyright 2026 The siot-trust Authors.
"""Repo lint for concurrency discipline. Four rules:

1. raw-primitive: std::mutex / std::shared_mutex / std::lock_guard /
   std::unique_lock / std::shared_lock / std::scoped_lock /
   std::condition_variable may appear ONLY in src/common/mutex.h. All
   other code must use the annotated siot::Mutex / siot::SharedMutex /
   siot::MutexLock / siot::ReaderLock / siot::CondVar wrappers — a raw
   primitive is invisible to clang's thread-safety analysis, so any
   state it guards silently loses its compile-time guarantees.

2. check-side-effect: SIOT_CHECK / SIOT_CHECK_MSG conditions must be
   pure (no ++, --, or assignment). The macros ARE active in every
   build today, but a reader pattern-matching on assert() semantics
   will assume the argument may not run; keeping conditions pure keeps
   that assumption harmless and keeps the macros free to change.

3. sleep-sync: tests/ must not synchronize with sleep_for. A sleep is
   a race with a timeout bolted on; use the deadline-polling helpers
   the services expose (e.g. AwaitPositions) or a CondVar wait on the
   state being awaited. (src/ is exempt: deadline-polling helpers are
   themselves implemented with a bounded sleep-poll loop.)

4. raw-random: tests/ and bench/ must not draw from rand()/srand() or
   std::random_device. Every simulation result in this repo is asserted
   bit-identical across thread counts and reruns; an unseeded (or
   process-global) randomness source makes a failure irreproducible.
   Use siot::Rng with DeriveStream/MixSeed so every draw is a pure
   function of the seed.

Exit status 0 when clean, 1 with one "path:line: [rule] message" per
finding otherwise. Run from anywhere; wired into tools/format_check.sh.
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SCAN_DIRS = ("src", "tests", "bench", "examples", "tools")
CXX_SUFFIXES = {".cc", ".cpp", ".h", ".hpp"}

RAW_PRIMITIVE = re.compile(
    r"\bstd::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|lock_guard|unique_lock|shared_lock|"
    r"scoped_lock|condition_variable|condition_variable_any)\b"
)
RAW_PRIMITIVE_ALLOWED = {pathlib.PurePosixPath("src/common/mutex.h")}

CHECK_CALL = re.compile(r"\bSIOT_CHECK(?:_MSG)?\s*\(")
# ++ / -- / assignment. `==`, `!=`, `<=`, `>=` are comparisons; a lone
# `=` or a compound `+=`-style `=` is a mutation.
INCREMENT = re.compile(r"\+\+|--")
ASSIGNMENT = re.compile(r"(?<![=!<>])=(?!=)")

SLEEP_SYNC = re.compile(r"\bsleep_for\s*\(")

RAW_RANDOM = re.compile(r"\b(?:std::)?(?:s?rand)\s*\(|\bstd::random_device\b")


def strip_comments(text: str) -> str:
    """Blanks out // and /* */ comments and string literals, preserving
    line structure so finding offsets still map to line numbers."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            end = text.find("\n", i)
            i = n if end == -1 else end
        elif ch == "/" and i + 1 < n and text[i + 1] == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            out.append("".join(c if c == "\n" else " " for c in text[i:end]))
            i = end
        elif ch in "\"'":
            quote, j = ch, i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i > 1 else ""))
            i = j
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def first_argument(text: str, open_paren: int) -> str | None:
    """The first top-level argument of the call whose '(' is at
    open_paren — i.e. the condition of SIOT_CHECK_MSG(cond, fmt, ...)."""
    depth, i = 0, open_paren
    start = open_paren + 1
    while i < len(text):
        ch = text[i]
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
            if depth == 0:
                return text[start:i]
        elif ch == "," and depth == 1:
            return text[start:i]
        i += 1
    return None  # Unbalanced (macro definition split across lines).


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def lint_file(path: pathlib.Path, findings: list[str]) -> None:
    rel = pathlib.PurePosixPath(path.relative_to(REPO).as_posix())
    raw = path.read_text(encoding="utf-8", errors="replace")
    text = strip_comments(raw)

    if rel not in RAW_PRIMITIVE_ALLOWED:
        for m in RAW_PRIMITIVE.finditer(text):
            findings.append(
                f"{rel}:{line_of(text, m.start())}: [raw-primitive] "
                f"{m.group(0)} outside src/common/mutex.h — use the "
                f"annotated siot:: wrappers so the thread-safety "
                f"analysis can see the lock"
            )

    for m in CHECK_CALL.finditer(text):
        cond = first_argument(text, m.end() - 1)
        if cond is None:
            continue
        if INCREMENT.search(cond) or ASSIGNMENT.search(cond):
            findings.append(
                f"{rel}:{line_of(text, m.start())}: [check-side-effect] "
                f"SIOT_CHECK condition mutates state — hoist the side "
                f"effect out and assert on the result"
            )

    if rel.parts and rel.parts[0] == "tests":
        for m in SLEEP_SYNC.finditer(text):
            findings.append(
                f"{rel}:{line_of(text, m.start())}: [sleep-sync] "
                f"sleep_for in a test — poll with a deadline helper "
                f"(e.g. AwaitPositions) or wait on a CondVar instead"
            )

    if rel.parts and rel.parts[0] in ("tests", "bench"):
        for m in RAW_RANDOM.finditer(text):
            findings.append(
                f"{rel}:{line_of(text, m.start())}: [raw-random] "
                f"{m.group(0).rstrip('(').strip()} in {rel.parts[0]}/ — "
                f"use siot::Rng seeded via MixSeed/DeriveStream so the "
                f"run is a pure function of the seed"
            )


def main() -> int:
    findings: list[str] = []
    for top in SCAN_DIRS:
        root = REPO / top
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in CXX_SUFFIXES and path.is_file():
                lint_file(path, findings)
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint_concurrency: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
